"""A small discrete-event simulation kernel plus the SMB contention scenario.

The analytic model in :mod:`repro.perfmodel.iteration` folds all queueing
behaviour into one calibrated contention factor.  This module provides an
independent, mechanism-level estimate: worker processes that actually
*queue* on a shared NIC resource and a serial accumulate engine, with the
Fig. 6 overlap protocol (background write thread, spill when the flush
outlives compute).  Tests cross-validate the two models qualitatively:
communication grows with workers, spill appears exactly when
``t_wwi + t_ugw > t_comp``, and hybrid grouping reduces SMB pressure.

The kernel is deliberately tiny: generator-based processes that ``yield``
:class:`Timeout`, :class:`Request` (FIFO resource hold), or :class:`Event`
(wait for a signal).
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Generator, List, Optional

import numpy as np

from .hardware import PAPER_HARDWARE, HardwareProfile
from .models import ModelProfile


class SimulationError(Exception):
    """A process yielded something the kernel does not understand."""


class Timeout:
    """Suspend the yielding process for ``delay`` simulated time units."""

    def __init__(self, delay: float) -> None:
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        self.delay = delay


class Event:
    """A one-shot signal processes can wait on (``yield event``)."""

    def __init__(self) -> None:
        self.triggered = False
        self._waiters: List[Callable[[], None]] = []

    def succeed(self, sim: "Simulator") -> None:
        """Fire the event, resuming all waiters at the current time."""
        if self.triggered:
            return
        self.triggered = True
        for waiter in self._waiters:
            sim.schedule(0.0, waiter)
        self._waiters.clear()


class Resource:
    """A FIFO-served exclusive resource (e.g. the SMB server's NIC).

    Processes ``yield resource.request(service_time)``; they resume once
    their service completes.  Utilisation statistics are kept for
    reporting.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._busy = False
        self._queue: Deque[tuple] = deque()
        self.busy_time = 0.0

    def request(self, service_time: float) -> "Request":
        return Request(self, service_time)


class Request:
    """One pending hold of a :class:`Resource`."""

    def __init__(self, resource: Resource, service_time: float) -> None:
        if service_time < 0:
            raise ValueError(f"service_time must be >= 0, got {service_time}")
        self.resource = resource
        self.service_time = service_time


class Simulator:
    """Event loop: schedule callbacks, drive generator processes."""

    def __init__(self) -> None:
        self.now = 0.0
        self._heap: List[tuple] = []
        self._sequence = itertools.count()
        self._active = 0

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` after ``delay`` time units."""
        heapq.heappush(
            self._heap, (self.now + delay, next(self._sequence), callback)
        )

    def process(self, generator: Generator) -> None:
        """Register a generator-based process."""
        self._active += 1
        self._step(generator)

    def _step(self, generator: Generator) -> None:
        try:
            yielded = next(generator)
        except StopIteration:
            self._active -= 1
            return
        self._dispatch(generator, yielded)

    def _dispatch(self, generator: Generator, yielded: object) -> None:
        if isinstance(yielded, Timeout):
            self.schedule(yielded.delay, lambda: self._step(generator))
        elif isinstance(yielded, Request):
            self._enqueue(generator, yielded)
        elif isinstance(yielded, Event):
            if yielded.triggered:
                self.schedule(0.0, lambda: self._step(generator))
            else:
                yielded._waiters.append(lambda: self._step(generator))
        else:
            raise SimulationError(f"cannot interpret yield of {yielded!r}")

    def _enqueue(self, generator: Generator, request: Request) -> None:
        resource = request.resource
        resource._queue.append((generator, request))
        if not resource._busy:
            self._serve_next(resource)

    def _serve_next(self, resource: Resource) -> None:
        if not resource._queue:
            resource._busy = False
            return
        resource._busy = True
        generator, request = resource._queue.popleft()
        resource.busy_time += request.service_time

        def done() -> None:
            self._serve_next(resource)
            self._step(generator)

        self.schedule(request.service_time, done)

    def run(self, until: Optional[float] = None) -> float:
        """Drain the event heap (or stop at ``until``); returns end time."""
        while self._heap:
            at, _, callback = heapq.heappop(self._heap)
            if until is not None and at > until:
                self.now = until
                break
            self.now = at
            callback()
        return self.now


# ---------------------------------------------------------------------------
# SMB contention scenario
# ---------------------------------------------------------------------------


@dataclass
class WorkerTrace:
    """Per-worker outcome of the contention simulation."""

    iterations: int = 0
    total_time: float = 0.0
    comm_time: float = 0.0

    @property
    def iteration_ms(self) -> float:
        return self.total_time / max(self.iterations, 1)

    @property
    def comm_ratio(self) -> float:
        return self.comm_time / max(self.total_time, 1e-12)


@dataclass
class ContentionResult:
    """Aggregate outcome across all simulated workers."""

    traces: List[WorkerTrace]
    nic_utilisation: float
    mem_utilisation: float

    @property
    def mean_iteration_ms(self) -> float:
        return float(np.mean([t.iteration_ms for t in self.traces]))

    @property
    def mean_comm_ms(self) -> float:
        return float(
            np.mean([t.comm_time / max(t.iterations, 1) for t in self.traces])
        )

    @property
    def mean_comm_ratio(self) -> float:
        return float(np.mean([t.comm_ratio for t in self.traces]))


def simulate_seasgd_contention(
    model: ModelProfile,
    workers: int,
    iterations: int = 50,
    hw: HardwareProfile = PAPER_HARDWARE,
    update_interval: int = 1,
    seed: int = 0,
    protocol_overhead_ms: float = 0.0,
) -> ContentionResult:
    """Queue-level simulation of ShmCaffe-A against one SMB server.

    Every worker iterates: wait for its previous flush (spill), read the
    global weights through the shared NIC FIFO, update local weights,
    kick a background flush (NIC write + serial accumulate on the memory
    engine), then compute with lognormal-ish jitter.

    Args:
        protocol_overhead_ms: Extra per-transfer software cost; raise it to
            study how protocol processing (the thing RDMA removes) degrades
            effective bandwidth.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    sim = Simulator()
    nic = Resource("nic")
    mem = Resource("mem")
    rng = np.random.default_rng(seed)
    traces = [WorkerTrace() for _ in range(workers)]

    bandwidth = hw.smb_effective_bandwidth_gbs
    transfer_ms = model.param_bytes / (bandwidth * 1e9) * 1e3
    transfer_ms += protocol_overhead_ms
    accumulate_ms = (
        3 * model.param_bytes / (hw.server_memory_bandwidth_gbs * 1e9) * 1e3
    )
    ulw_ms = (
        model.param_bytes / (hw.local_memory_bandwidth_gbs * 1e9) * 1e3
    )

    def flusher(done: Event) -> Generator:
        yield nic.request(transfer_ms)   # T.A1: write dW_x
        yield mem.request(accumulate_ms)  # T.A3: serial accumulate
        done.succeed(sim)

    def worker(index: int) -> Generator:
        trace = traces[index]
        flushed = Event()
        flushed.succeed(sim)  # nothing in flight initially
        start = sim.now
        for iteration in range(iterations):
            iter_start = sim.now
            if workers > 1 and iteration % update_interval == 0:
                yield flushed                      # T.A5 spill
                yield nic.request(transfer_ms)     # T1 read W_g
                yield Timeout(ulw_ms)              # T2/eq.6 local update
                flushed = Event()
                sim.process(flusher(flushed))      # T3 wake update thread
            trace.comm_time += sim.now - iter_start
            jitter = max(
                0.1, rng.normal(1.0, hw.compute_cv)
            )
            yield Timeout(model.compute_ms * jitter)  # T4+T5
            trace.iterations += 1
        trace.total_time = sim.now - start

    for index in range(workers):
        sim.process(worker(index))
    end = sim.run()
    horizon = max(end, 1e-9)
    return ContentionResult(
        traces=traces,
        nic_utilisation=nic.busy_time / horizon,
        mem_utilisation=mem.busy_time / horizon,
    )
