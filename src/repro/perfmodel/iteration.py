"""Per-iteration time model: eq. (8) and its platform variants.

The paper decomposes one SEASGD training iteration as

    T_iter = T_comp + T_comm
           = max[T_comp, (T_wwi + T_ugw)] + T_rgw + T_ulw        (8)

i.e. the *write* side (write weight increment ``T_wwi`` + server-side
global-weight update ``T_ugw``) overlaps with computation via the Fig. 6
update thread, while the *read* side (read global weights ``T_rgw`` +
update local weights ``T_ulw``) is synchronous by design.  ``T_comm`` in
the tables is the communication time **not hidden** by computation.

Each platform gets its own breakdown function; all share the
:class:`~repro.perfmodel.hardware.HardwareProfile` constants.  Reported
numbers are milliseconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from .hardware import GPUS_PER_NODE, PAPER_HARDWARE, HardwareProfile
from .models import ModelProfile


@dataclass(frozen=True)
class IterationBreakdown:
    """Timing of one training iteration on one platform configuration."""

    platform: str
    model: str
    workers: int
    compute_ms: float
    comm_ms: float
    components: Dict[str, float] = field(default_factory=dict)

    @property
    def iteration_ms(self) -> float:
        """Total per-iteration wall time (eq. 8 left-hand side)."""
        return self.compute_ms + self.comm_ms

    @property
    def comm_ratio(self) -> float:
        """Fraction of the iteration spent in visible communication."""
        return self.comm_ms / self.iteration_ms


def _ms(nbytes: float, bandwidth_gbs: float) -> float:
    """Transfer time in ms for ``nbytes`` at ``bandwidth_gbs`` GB/s."""
    return nbytes / (bandwidth_gbs * 1e9) * 1e3


def caffe_standalone(
    model: ModelProfile, hw: HardwareProfile = PAPER_HARDWARE
) -> IterationBreakdown:
    """BVLC Caffe on one GPU: pure compute plus the data layer."""
    compute = model.compute_ms + hw.data_layer_overhead_ms
    return IterationBreakdown(
        platform="caffe", model=model.name, workers=1,
        compute_ms=compute, comm_ms=0.0,
    )


def caffe_multi_gpu(
    model: ModelProfile,
    workers: int,
    hw: HardwareProfile = PAPER_HARDWARE,
) -> IterationBreakdown:
    """BVLC Caffe multi-GPU SSGD (NCCL over the host-staged PCIe tree).

    Beyond one root complex, Caffe 1.0's aggregation stages through host
    memory and serialises on the dual-socket topology; the super-linear
    ``n^p`` term is calibrated to the paper's measured 8/16-GPU Caffe
    scalability (2.7x / 2.3x).
    """
    if workers == 1:
        return caffe_standalone(model, hw)
    base = _ms(model.param_bytes, hw.pcie_bandwidth_gbs)
    transfer = (
        hw.caffe_host_staging_coeff
        * base
        * workers ** hw.caffe_host_staging_exponent
    )
    straggle = model.compute_ms * (hw.straggler_factor(workers) - 1.0)
    compute = model.compute_ms + hw.data_layer_overhead_ms
    return IterationBreakdown(
        platform="caffe", model=model.name, workers=workers,
        compute_ms=compute,
        comm_ms=transfer + straggle,
        components={"transfer": transfer, "straggler": straggle},
    )


def caffe_mpi(
    model: ModelProfile,
    workers: int,
    hw: HardwareProfile = PAPER_HARDWARE,
) -> IterationBreakdown:
    """Caffe-MPI star-topology SSGD: the master's HCA carries everything.

    Per iteration the master receives ``n`` gradients and sends ``n``
    weight copies over MPI Send/Recv, whose kernel copies run at
    ``mpi_protocol_efficiency`` of the RDMA line rate — the overhead
    ShmCaffe exists to remove.
    """
    if workers == 1:
        return caffe_standalone(model, hw)
    bandwidth = hw.smb_effective_bandwidth_gbs * hw.mpi_protocol_efficiency
    transfer = 2.0 * workers * _ms(model.param_bytes, bandwidth)
    straggle = model.compute_ms * (hw.straggler_factor(workers) - 1.0)
    compute = model.compute_ms + hw.data_layer_overhead_ms
    return IterationBreakdown(
        platform="caffe_mpi", model=model.name, workers=workers,
        compute_ms=compute,
        comm_ms=transfer + straggle,
        components={"transfer": transfer, "straggler": straggle},
    )


def mpi_caffe(
    model: ModelProfile,
    workers: int,
    hw: HardwareProfile = PAPER_HARDWARE,
    gpus_per_node: int = GPUS_PER_NODE,
) -> IterationBreakdown:
    """MPICaffe: SSGD via MPI_Allreduce (ring) across worker ranks.

    Ring volume is ``2 (n-1)/n`` of the payload per rank; ranks on the
    same node share one HCA, multiplying the per-HCA traffic.  Within a
    single node the ring runs over PCIe instead.
    """
    if workers == 1:
        return caffe_standalone(model, hw)
    ring_volume = 2.0 * (workers - 1) / workers * model.param_bytes
    if workers <= gpus_per_node:
        transfer = _ms(ring_volume, hw.pcie_bandwidth_gbs)
    else:
        sharing = min(workers, gpus_per_node)
        bandwidth = (
            hw.smb_effective_bandwidth_gbs * hw.mpi_protocol_efficiency
        )
        transfer = _ms(ring_volume * sharing, bandwidth)
    straggle = model.compute_ms * (hw.straggler_factor(workers) - 1.0)
    compute = model.compute_ms + hw.data_layer_overhead_ms
    return IterationBreakdown(
        platform="mpi_caffe", model=model.name, workers=workers,
        compute_ms=compute,
        comm_ms=transfer + straggle,
        components={"transfer": transfer, "straggler": straggle},
    )


def _seasgd_exchange_terms(
    model: ModelProfile,
    participants: int,
    hw: HardwareProfile,
) -> Dict[str, float]:
    """The four eq.-(8) terms for one SEASGD exchange."""
    contention = hw.contention_factor(participants)
    smb = hw.smb_effective_bandwidth_gbs
    return {
        "t_rgw": _ms(model.param_bytes, smb) * contention,
        "t_wwi": _ms(model.param_bytes, smb) * contention,
        # Server-side accumulate reads dW, reads W_g, writes W_g.
        "t_ugw": _ms(3 * model.param_bytes, hw.server_memory_bandwidth_gbs),
        "t_ulw": _ms(model.param_bytes, hw.local_memory_bandwidth_gbs),
    }


def seasgd_phase_expectations(
    model: ModelProfile,
    participants: int,
    hw: HardwareProfile = PAPER_HARDWARE,
) -> Dict[str, float]:
    """Predicted per-phase times (ms) keyed by telemetry phase names.

    The bridge between this analytic model and the telemetry
    subsystem's measured phase histograms: the four eq.-(8) exchange
    terms plus ``comp``, renamed from ``t_rgw``-style keys to the
    ``rgw``-style phase taxonomy of :mod:`repro.telemetry.phases` so a
    live run's report can be cross-validated line by line.
    """
    terms = _seasgd_exchange_terms(model, participants, hw)
    return {
        "comp": model.compute_ms + hw.data_layer_overhead_ms,
        "wwi": terms["t_wwi"],
        "ugw": terms["t_ugw"],
        "rgw": terms["t_rgw"],
        "ulw": terms["t_ulw"],
    }


def shmcaffe_a(
    model: ModelProfile,
    workers: int,
    hw: HardwareProfile = PAPER_HARDWARE,
    update_interval: int = 1,
) -> IterationBreakdown:
    """ShmCaffe-A (pure SEASGD): eq. (8) with all workers on one SMB server.

    A single worker shares with nobody, so its communication is zero — the
    Table V "1 worker" column.
    """
    compute = model.compute_ms + hw.data_layer_overhead_ms
    if workers == 1:
        return IterationBreakdown(
            platform="shmcaffe_a", model=model.name, workers=1,
            compute_ms=compute, comm_ms=0.0,
        )
    terms = _seasgd_exchange_terms(model, workers, hw)
    # The write side gets update_interval iterations of compute to hide in.
    hideable = update_interval * model.compute_ms
    spill = max(0.0, terms["t_wwi"] + terms["t_ugw"] - hideable)
    per_exchange = terms["t_rgw"] + terms["t_ulw"] + spill
    comm = per_exchange / update_interval
    return IterationBreakdown(
        platform="shmcaffe_a", model=model.name, workers=workers,
        compute_ms=compute, comm_ms=comm,
        components={**terms, "spill": spill,
                    "update_interval": float(update_interval)},
    )


def shmcaffe_multi_server(
    model: ModelProfile,
    workers: int,
    num_servers: int,
    hw: HardwareProfile = PAPER_HARDWARE,
    update_interval: int = 1,
) -> IterationBreakdown:
    """ShmCaffe-A with parameters striped over several SMB servers.

    The paper's stated future work (Sec. V): the single memory server's
    HCA bounds every exchange, so stripe ``W_g`` over K servers.  Each
    stripe carries ``1/K`` of the payload and the stripes move in
    parallel on disjoint HCAs, dividing both the transfer terms and the
    (per-server, still serialised) accumulate time by K.  The local
    weight update ``T_ulw`` is unchanged — the replica is whole either
    way.
    """
    if num_servers < 1:
        raise ValueError(f"num_servers must be >= 1, got {num_servers}")
    compute = model.compute_ms + hw.data_layer_overhead_ms
    if workers == 1:
        return IterationBreakdown(
            platform="shmcaffe_multi", model=model.name, workers=1,
            compute_ms=compute, comm_ms=0.0,
        )
    terms = _seasgd_exchange_terms(model, workers, hw)
    striped = {
        "t_rgw": terms["t_rgw"] / num_servers,
        "t_wwi": terms["t_wwi"] / num_servers,
        "t_ugw": terms["t_ugw"] / num_servers,
        "t_ulw": terms["t_ulw"],
    }
    hideable = update_interval * model.compute_ms
    spill = max(0.0, striped["t_wwi"] + striped["t_ugw"] - hideable)
    per_exchange = striped["t_rgw"] + striped["t_ulw"] + spill
    comm = per_exchange / update_interval
    return IterationBreakdown(
        platform="shmcaffe_multi", model=model.name, workers=workers,
        compute_ms=compute, comm_ms=comm,
        components={**striped, "spill": spill,
                    "num_servers": float(num_servers)},
    )


def shmcaffe_h(
    model: ModelProfile,
    workers: int,
    group_size: int,
    hw: HardwareProfile = PAPER_HARDWARE,
    update_interval: int = 1,
) -> IterationBreakdown:
    """ShmCaffe-H: intra-group NCCL SSGD + per-group-root SEASGD.

    Only the ``workers / group_size`` roots contend on the SMB server;
    group members additionally pay the intra-node ring allreduce, the
    post-exchange weight broadcast, and the group's straggler wait.
    A single group (e.g. the 4(S4) configuration of Table III) never
    touches SMB and degenerates to single-node synchronous Caffe.
    """
    if workers % group_size != 0:
        raise ValueError(
            f"group_size {group_size} must divide workers {workers}"
        )
    if group_size == 1:
        return shmcaffe_a(model, workers, hw, update_interval)
    groups = workers // group_size
    compute = model.compute_ms + hw.data_layer_overhead_ms

    ring_volume = 2.0 * (group_size - 1) / group_size * model.param_bytes
    allreduce = _ms(ring_volume, hw.pcie_bandwidth_gbs)
    straggle = model.compute_ms * (hw.straggler_factor(group_size) - 1.0)

    if groups == 1:
        comm = allreduce + straggle
        components = {"allreduce": allreduce, "straggler": straggle}
    else:
        terms = _seasgd_exchange_terms(model, groups, hw)
        broadcast = _ms(model.param_bytes, hw.pcie_bandwidth_gbs)
        hideable = update_interval * model.compute_ms
        spill = max(0.0, terms["t_wwi"] + terms["t_ugw"] - hideable)
        per_exchange = terms["t_rgw"] + terms["t_ulw"] + broadcast + spill
        comm = allreduce + straggle + per_exchange / update_interval
        components = {
            **terms,
            "allreduce": allreduce,
            "straggler": straggle,
            "broadcast": broadcast,
            "spill": spill,
        }
    return IterationBreakdown(
        platform="shmcaffe_h", model=model.name, workers=workers,
        compute_ms=compute, comm_ms=comm, components=components,
    )
