"""Behavioural layer tests: exact outputs, modes, shape/config errors."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.caffe.layers import (
    LRN,
    Accuracy,
    BatchNorm,
    Concat,
    Convolution,
    Dropout,
    Eltwise,
    InnerProduct,
    LayerError,
    Pooling,
    ReLU,
    Sigmoid,
    SoftmaxWithLoss,
    col2im,
    im2col,
    softmax,
)

RNG = np.random.default_rng(3)


def setup_layer(layer, *bottom_shapes, seed=0):
    return layer.setup(list(bottom_shapes), np.random.default_rng(seed))


class TestIm2col:
    def test_known_unfold(self):
        image = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        cols = im2col(image, kernel=2, stride=2, pad=0)
        assert cols.shape == (1, 4, 4)
        np.testing.assert_array_equal(cols[0, :, 0], [0, 1, 4, 5])
        np.testing.assert_array_equal(cols[0, :, 3], [10, 11, 14, 15])

    def test_col2im_is_adjoint_of_im2col(self):
        # <im2col(x), y> == <x, col2im(y)> for random x, y (adjoint test).
        x = RNG.standard_normal((2, 3, 6, 6)).astype(np.float32)
        kernel, stride, pad = 3, 2, 1
        cols = im2col(x, kernel, stride, pad)
        y = RNG.standard_normal(cols.shape).astype(np.float32)
        lhs = float((cols * y).sum())
        rhs = float((x * col2im(y, x.shape, kernel, stride, pad)).sum())
        assert abs(lhs - rhs) / max(abs(lhs), 1.0) < 1e-4

    def test_rectangular_geometry(self):
        x = np.zeros((1, 2, 5, 9), dtype=np.float32)
        cols = im2col(x, kernel=(1, 7), stride=1, pad=(0, 3))
        assert cols.shape == (1, 2 * 7, 5 * 9)


class TestConvolution:
    def test_identity_kernel(self):
        conv = Convolution("c", num_output=1, kernel=1, bias=False)
        setup_layer(conv, (1, 1, 3, 3))
        conv.params[0].data[:] = 2.0
        x = np.arange(9, dtype=np.float32).reshape(1, 1, 3, 3)
        (out,) = conv.forward([x], train=True)
        np.testing.assert_allclose(out, 2.0 * x)

    def test_bias_added_per_channel(self):
        conv = Convolution("c", num_output=2, kernel=1)
        setup_layer(conv, (1, 1, 2, 2))
        conv.params[0].data[:] = 0.0
        conv.params[1].data[:] = [3.0, -1.0]
        (out,) = conv.forward(
            [np.zeros((1, 1, 2, 2), dtype=np.float32)], train=True
        )
        np.testing.assert_allclose(out[0, 0], 3.0)
        np.testing.assert_allclose(out[0, 1], -1.0)

    def test_output_shape_with_stride_pad(self):
        conv = Convolution("c", num_output=8, kernel=7, stride=2, pad=3)
        (shape,) = setup_layer(conv, (4, 3, 224, 224))
        assert shape == (4, 8, 112, 112)

    def test_geometry_validation(self):
        with pytest.raises(LayerError):
            Convolution("c", num_output=0, kernel=3)
        with pytest.raises(LayerError):
            Convolution("c", num_output=4, kernel=3, pad=-1)

    def test_bias_lr_mult_doubled(self):
        # Caffe convention: bias learns at 2x LR, no weight decay.
        conv = Convolution("c", num_output=2, kernel=1)
        setup_layer(conv, (1, 1, 2, 2))
        assert conv.lr_mults == [1.0, 2.0]
        assert conv.decay_mults == [1.0, 0.0]


class TestPooling:
    def test_max_pool_values(self):
        pool = Pooling("p", method="max", kernel=2, stride=2)
        x = np.asarray(
            [[[[1, 2, 5, 0], [3, 4, 1, 1], [0, 0, 9, 2], [0, 0, 3, 4]]]],
            dtype=np.float32,
        )
        setup_layer(pool, x.shape)
        (out,) = pool.forward([x], train=True)
        np.testing.assert_array_equal(out[0, 0], [[4, 5], [0, 9]])

    def test_ave_pool_values(self):
        pool = Pooling("p", method="ave", kernel=2, stride=2)
        x = np.ones((1, 1, 4, 4), dtype=np.float32)
        setup_layer(pool, x.shape)
        (out,) = pool.forward([x], train=True)
        np.testing.assert_allclose(out, 1.0)

    def test_global_pool_shape(self):
        pool = Pooling("p", method="ave", global_pool=True)
        (shape,) = setup_layer(pool, (2, 5, 7, 7))
        assert shape == (2, 5, 1, 1)

    def test_global_ave_is_mean(self):
        pool = Pooling("p", method="ave", global_pool=True)
        x = RNG.standard_normal((2, 3, 4, 4)).astype(np.float32)
        setup_layer(pool, x.shape)
        (out,) = pool.forward([x], train=True)
        np.testing.assert_allclose(
            out[:, :, 0, 0], x.mean(axis=(2, 3)), rtol=1e-5
        )

    def test_ceil_mode_shape(self):
        # Caffe's 3x3/s2 pooling on 7x7 yields 3x3 via ceil mode... on 8x8
        # it yields 4x4 (ceil((8-3)/2)+1 = 4).
        pool = Pooling("p", method="max", kernel=3, stride=2)
        (shape,) = setup_layer(pool, (1, 1, 8, 8))
        assert shape == (1, 1, 4, 4)

    def test_unknown_method(self):
        with pytest.raises(LayerError):
            Pooling("p", method="median")

    def test_max_backward_before_forward(self):
        pool = Pooling("p", method="max")
        setup_layer(pool, (1, 1, 4, 4))
        with pytest.raises(LayerError):
            pool.backward(
                [np.zeros((1, 1, 2, 2), dtype=np.float32)],
                [np.zeros((1, 1, 4, 4), dtype=np.float32)],
                [np.zeros((1, 1, 2, 2), dtype=np.float32)],
            )


class TestActivations:
    def test_relu_clamps(self):
        relu = ReLU("r")
        setup_layer(relu, (1, 3))
        (out,) = relu.forward(
            [np.asarray([[-1.0, 0.0, 2.0]], dtype=np.float32)], train=True
        )
        np.testing.assert_array_equal(out, [[0.0, 0.0, 2.0]])

    def test_sigmoid_extreme_inputs_stable(self):
        sig = Sigmoid("s")
        setup_layer(sig, (1, 2))
        (out,) = sig.forward(
            [np.asarray([[-500.0, 500.0]], dtype=np.float32)], train=True
        )
        assert np.isfinite(out).all()
        np.testing.assert_allclose(out, [[0.0, 1.0]], atol=1e-6)


class TestSoftmaxLoss:
    def test_softmax_rows_sum_to_one(self):
        logits = RNG.standard_normal((5, 7)).astype(np.float32)
        prob = softmax(logits)
        np.testing.assert_allclose(prob.sum(axis=1), 1.0, rtol=1e-5)

    def test_softmax_stable_for_huge_logits(self):
        prob = softmax(np.asarray([[1000.0, 0.0]], dtype=np.float32))
        assert np.isfinite(prob).all()

    def test_perfect_prediction_loss_near_zero(self):
        loss_layer = SoftmaxWithLoss("l")
        setup_layer(loss_layer, (2, 3), (2,))
        logits = np.asarray(
            [[100.0, 0, 0], [0, 100.0, 0]], dtype=np.float32
        )
        (loss,) = loss_layer.forward(
            [logits, np.asarray([0, 1])], train=True
        )
        assert loss[0] < 1e-5

    def test_uniform_prediction_loss_is_log_k(self):
        loss_layer = SoftmaxWithLoss("l")
        setup_layer(loss_layer, (4, 10), (4,))
        (loss,) = loss_layer.forward(
            [np.zeros((4, 10), dtype=np.float32), np.arange(4)], train=True
        )
        np.testing.assert_allclose(loss[0], np.log(10), rtol=1e-5)

    def test_loss_weight_scales_gradient(self):
        logits = RNG.standard_normal((3, 4)).astype(np.float32)
        labels = np.asarray([0, 1, 2])
        grads = {}
        for weight in (1.0, 0.3):
            layer = SoftmaxWithLoss("l", loss_weight=weight)
            setup_layer(layer, (3, 4), (3,))
            layer.forward([logits, labels], train=True)
            grads[weight], _ = layer.backward(
                [np.ones(1, dtype=np.float32)], [logits, labels], []
            )
        np.testing.assert_allclose(
            grads[0.3], 0.3 * grads[1.0], rtol=1e-5
        )

    def test_batch_mismatch_rejected(self):
        layer = SoftmaxWithLoss("l")
        with pytest.raises(LayerError):
            setup_layer(layer, (2, 3), (3,))


class TestAccuracy:
    def test_top1(self):
        accuracy = Accuracy("a", top_k=1)
        setup_layer(accuracy, (3, 4), (3,))
        logits = np.asarray(
            [[9, 0, 0, 0], [0, 9, 0, 0], [9, 0, 0, 0]], dtype=np.float32
        )
        (out,) = accuracy.forward(
            [logits, np.asarray([0, 1, 3])], train=False
        )
        np.testing.assert_allclose(out[0], 2 / 3)

    def test_top_k_hits_runner_up(self):
        accuracy = Accuracy("a", top_k=2)
        setup_layer(accuracy, (1, 4), (1,))
        logits = np.asarray([[5.0, 4.0, 0.0, 0.0]], dtype=np.float32)
        (out,) = accuracy.forward([logits, np.asarray([1])], train=False)
        assert out[0] == 1.0

    def test_top_k_exceeding_classes_rejected(self):
        accuracy = Accuracy("a", top_k=5)
        with pytest.raises(LayerError):
            setup_layer(accuracy, (1, 3), (1,))


class TestBatchNorm:
    def test_train_output_standardised(self):
        bn = BatchNorm("bn", affine=False)
        setup_layer(bn, (8, 4, 5, 5))
        x = RNG.standard_normal((8, 4, 5, 5)).astype(np.float32) * 3 + 7
        (out,) = bn.forward([x], train=True)
        np.testing.assert_allclose(out.mean(axis=(0, 2, 3)), 0.0, atol=1e-4)
        np.testing.assert_allclose(out.std(axis=(0, 2, 3)), 1.0, atol=1e-2)

    def test_running_stats_converge(self):
        bn = BatchNorm("bn", affine=False, momentum=0.5)
        setup_layer(bn, (16, 2, 4, 4))
        for _ in range(20):
            x = RNG.standard_normal((16, 2, 4, 4)).astype(np.float32) + 5.0
            bn.forward([x], train=True)
        np.testing.assert_allclose(bn.running_mean, 5.0, atol=0.2)

    def test_test_mode_uses_running_stats(self):
        bn = BatchNorm("bn", affine=False, momentum=0.1)
        setup_layer(bn, (4, 2, 3, 3))
        for _ in range(30):
            bn.forward(
                [RNG.standard_normal((4, 2, 3, 3)).astype(np.float32)],
                train=True,
            )
        x = np.zeros((4, 2, 3, 3), dtype=np.float32)
        (out,) = bn.forward([x], train=False)
        # Zero input normalised by ~zero running mean stays near zero.
        assert np.abs(out).max() < 1.0

    def test_stats_are_lr0_params(self):
        bn = BatchNorm("bn")
        setup_layer(bn, (2, 3, 4, 4))
        assert len(bn.params) == 4  # gamma, beta, mean, var
        assert bn.lr_mults == [1.0, 1.0, 0.0, 0.0]

    def test_rank_validation(self):
        with pytest.raises(LayerError):
            setup_layer(BatchNorm("bn"), (2, 3, 4))


class TestDropout:
    def test_test_mode_identity(self):
        dropout = Dropout("d", ratio=0.5)
        setup_layer(dropout, (4, 100))
        x = RNG.standard_normal((4, 100)).astype(np.float32)
        (out,) = dropout.forward([x], train=False)
        np.testing.assert_array_equal(out, x)

    def test_train_mode_zeroes_and_rescales(self):
        dropout = Dropout("d", ratio=0.5)
        setup_layer(dropout, (10, 1000))
        x = np.ones((10, 1000), dtype=np.float32)
        (out,) = dropout.forward([x], train=True)
        zeros = (out == 0).mean()
        assert 0.4 < zeros < 0.6
        kept = out[out != 0]
        np.testing.assert_allclose(kept, 2.0)  # inverted scaling

    def test_expected_value_preserved(self):
        dropout = Dropout("d", ratio=0.3)
        setup_layer(dropout, (100, 100))
        x = np.ones((100, 100), dtype=np.float32)
        (out,) = dropout.forward([x], train=True)
        assert abs(out.mean() - 1.0) < 0.05

    def test_backward_uses_same_mask(self):
        dropout = Dropout("d", ratio=0.5)
        setup_layer(dropout, (2, 50))
        x = np.ones((2, 50), dtype=np.float32)
        (out,) = dropout.forward([x], train=True)
        (grad,) = dropout.backward([np.ones_like(x)], [x], [out])
        np.testing.assert_array_equal(grad, out)

    def test_invalid_ratio(self):
        with pytest.raises(LayerError):
            Dropout("d", ratio=1.0)


class TestConcatEltwise:
    def test_concat_channels(self):
        concat = Concat("cat")
        shapes = setup_layer(concat, (2, 3, 4, 4), (2, 5, 4, 4))
        assert shapes[0] == (2, 8, 4, 4)

    def test_concat_backward_splits(self):
        concat = Concat("cat")
        setup_layer(concat, (1, 2, 2, 2), (1, 3, 2, 2))
        a = np.zeros((1, 2, 2, 2), dtype=np.float32)
        b = np.zeros((1, 3, 2, 2), dtype=np.float32)
        (top,) = concat.forward([a, b], train=True)
        diff = np.arange(top.size, dtype=np.float32).reshape(top.shape)
        da, db = concat.backward([diff], [a, b], [top])
        np.testing.assert_array_equal(da, diff[:, :2])
        np.testing.assert_array_equal(db, diff[:, 2:])

    def test_concat_spatial_mismatch_rejected(self):
        with pytest.raises(LayerError):
            setup_layer(Concat("cat"), (1, 2, 4, 4), (1, 2, 5, 5))

    def test_eltwise_coeff_sum(self):
        eltwise = Eltwise("e", operation="sum", coeffs=(0.5, 2.0))
        setup_layer(eltwise, (1, 2), (1, 2))
        a = np.asarray([[2.0, 4.0]], dtype=np.float32)
        b = np.asarray([[1.0, 1.0]], dtype=np.float32)
        (out,) = eltwise.forward([a, b], train=True)
        np.testing.assert_allclose(out, [[3.0, 4.0]])

    def test_eltwise_coeff_count_checked(self):
        eltwise = Eltwise("e", operation="sum", coeffs=(1.0,))
        with pytest.raises(LayerError):
            setup_layer(eltwise, (1, 2), (1, 2))

    def test_coeffs_require_sum(self):
        with pytest.raises(LayerError):
            Eltwise("e", operation="max", coeffs=(1.0, 1.0))


class TestLRN:
    def test_identity_when_alpha_zero(self):
        lrn = LRN("l", local_size=5, alpha=0.0, beta=0.75)
        setup_layer(lrn, (1, 8, 2, 2))
        x = RNG.standard_normal((1, 8, 2, 2)).astype(np.float32)
        (out,) = lrn.forward([x], train=True)
        np.testing.assert_allclose(out, x, rtol=1e-5)

    def test_window_sum_matches_naive(self):
        lrn = LRN("l", local_size=3, alpha=1.0, beta=1.0, k=0.0)
        setup_layer(lrn, (1, 4, 1, 1))
        x = np.asarray([1.0, 2.0, 3.0, 4.0], dtype=np.float32).reshape(
            1, 4, 1, 1
        )
        (out,) = lrn.forward([x], train=True)
        # scale_c = (alpha/n) * sum window of squares; b = x / scale
        squares = x.ravel() ** 2
        sums = [
            squares[0] + squares[1],
            squares[:3].sum(),
            squares[1:].sum(),
            squares[2] + squares[3],
        ]
        expected = x.ravel() / (np.asarray(sums) / 3.0)
        np.testing.assert_allclose(out.ravel(), expected, rtol=1e-5)

    def test_even_local_size_rejected(self):
        with pytest.raises(LayerError):
            LRN("l", local_size=4)


class TestInnerProduct:
    def test_known_matmul(self):
        ip = InnerProduct("fc", num_output=2)
        setup_layer(ip, (1, 3))
        ip.params[0].data[:] = [[1, 0, 0], [0, 1, 1]]
        ip.params[1].data[:] = [10, 20]
        (out,) = ip.forward(
            [np.asarray([[1.0, 2.0, 3.0]], dtype=np.float32)], train=True
        )
        np.testing.assert_allclose(out, [[11.0, 25.0]])

    def test_flattens_spatial_input(self):
        ip = InnerProduct("fc", num_output=4)
        (shape,) = setup_layer(ip, (2, 3, 5, 5))
        assert shape == (2, 4)
        assert ip.params[0].shape == (4, 75)


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(1, 4),
    c=st.integers(1, 4),
    size=st.integers(3, 10),
    kernel=st.integers(1, 3),
    stride=st.integers(1, 2),
    pad=st.integers(0, 1),
)
def test_im2col_col2im_adjoint_property(n, c, size, kernel, stride, pad):
    """<im2col(x), y> == <x, col2im(y)> for arbitrary geometry."""
    if size + 2 * pad < kernel:
        return
    rng = np.random.default_rng(42)
    x = rng.standard_normal((n, c, size, size)).astype(np.float32)
    cols = im2col(x, kernel, stride, pad)
    y = rng.standard_normal(cols.shape).astype(np.float32)
    lhs = float((cols * y).sum())
    rhs = float((x * col2im(y, x.shape, kernel, stride, pad)).sum())
    assert abs(lhs - rhs) <= 1e-3 * max(abs(lhs), abs(rhs), 1.0)


class TestPoolingCeilMode:
    def test_floor_mode_shape(self):
        # 8x8, kernel 3, stride 2: ceil -> 4, floor ("valid") -> 3.
        ceil_pool = Pooling("p", method="max", kernel=3, stride=2)
        (ceil_shape,) = setup_layer(ceil_pool, (1, 1, 8, 8))
        floor_pool = Pooling("p", method="max", kernel=3, stride=2,
                             ceil=False)
        (floor_shape,) = setup_layer(floor_pool, (1, 1, 8, 8))
        assert ceil_shape == (1, 1, 4, 4)
        assert floor_shape == (1, 1, 3, 3)

    def test_modes_agree_when_divisible(self):
        for mode in (True, False):
            pool = Pooling("p", method="max", kernel=2, stride=2, ceil=mode)
            (shape,) = setup_layer(pool, (1, 1, 8, 8))
            assert shape == (1, 1, 4, 4)

    def test_floor_mode_forward_backward(self):
        pool = Pooling("p", method="max", kernel=3, stride=2, ceil=False)
        setup_layer(pool, (1, 1, 8, 8))
        x = RNG.standard_normal((1, 1, 8, 8)).astype(np.float32)
        (top,) = pool.forward([x], train=True)
        assert top.shape == (1, 1, 3, 3)
        (grad,) = pool.backward([np.ones_like(top)], [x], [top])
        assert grad.shape == x.shape
        # Every output cell routed its gradient to exactly one input.
        assert grad.sum() == pytest.approx(9.0)

    def test_floor_mode_aligns_with_valid_conv(self):
        # The Inception-ResNet stem invariant: a 3x3/2 valid conv and a
        # 3x3/2 floor pool produce identical spatial dims at any size.
        from repro.caffe.layers import conv_output_dim, pool_output_dim

        for size in range(5, 100):
            conv_out = conv_output_dim(size, 3, 2, 0)
            pool_out = pool_output_dim(size, 3, 2, 0, ceil=False)
            assert conv_out == pool_out
