"""Numerical gradient checking shared by the layer test modules."""

import numpy as np

from repro.caffe.net import Net


def check_net_gradients(
    spec,
    inputs,
    eps: float = 1e-3,
    tol: float = 5e-3,
    samples_per_param: int = 4,
    check_inputs: bool = False,
    seed: int = 0,
):
    """Compare analytic parameter gradients against central differences.

    Gradients are checked on randomly sampled entries of every parameter
    blob (checking all entries of a conv layer is needlessly slow).  The
    relative error of each sampled entry must stay under ``tol``.
    """
    net = Net(spec, seed=0)
    net.zero_param_diffs()
    net.forward(inputs, train=True)
    net.backward()
    analytic = {
        id(blob): blob.diff.copy() for blob in net.params
    }
    rng = np.random.default_rng(seed)

    worst = 0.0
    for blob in net.params:
        flat = blob.data.ravel()
        grad = analytic[id(blob)].ravel()
        count = min(samples_per_param, blob.count)
        for index in rng.choice(blob.count, size=count, replace=False):
            original = flat[index]
            flat[index] = original + eps
            loss_plus = net.total_loss(net.forward(inputs, train=True))
            flat[index] = original - eps
            loss_minus = net.total_loss(net.forward(inputs, train=True))
            flat[index] = original
            numeric = (loss_plus - loss_minus) / (2 * eps)
            scale = max(1.0, abs(numeric), abs(grad[index]))
            error = abs(numeric - grad[index]) / scale
            worst = max(worst, error)
            assert error < tol, (
                f"param {blob.name}[{index}]: analytic {grad[index]:.6f} "
                f"vs numeric {numeric:.6f} (err {error:.2e})"
            )
    return worst
