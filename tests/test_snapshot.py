"""Tests for snapshot/restore (.caffemodel / .solverstate equivalents)."""

import numpy as np
import pytest

from repro.caffe import (
    Net,
    SGDSolver,
    SnapshotError,
    SolverConfig,
    load_net,
    load_solver_state,
    save_net,
    save_solver_state,
)
from repro.caffe.netspec import NetSpec

from .test_net_solver import make_inputs
from .test_netspec import small_spec


class TestNetSnapshot:
    def test_roundtrip(self, tmp_path):
        net = Net(small_spec(), seed=3)
        path = tmp_path / "weights.npz"
        save_net(net, path)
        other = Net(small_spec(), seed=99)
        load_net(other, path)
        for a, b in zip(net.params, other.params):
            np.testing.assert_array_equal(a.data, b.data)

    def test_bn_running_stats_included(self, tmp_path):
        net = Net(small_spec(), seed=0)
        # Run a few train-mode forwards so running stats move off init.
        for seed in range(3):
            net.forward(make_inputs(seed=seed), train=True)
        path = tmp_path / "weights.npz"
        save_net(net, path)
        other = Net(small_spec(), seed=1)
        load_net(other, path)
        same_eval = other.forward(make_inputs(seed=9), train=False)
        reference = net.forward(make_inputs(seed=9), train=False)
        np.testing.assert_allclose(
            same_eval["fc"], reference["fc"], rtol=1e-5
        )

    def test_mismatched_spec_rejected(self, tmp_path):
        net = Net(small_spec(), seed=0)
        path = tmp_path / "weights.npz"
        save_net(net, path)

        different = NetSpec("other")
        data = different.input("data", (2, 3, 8, 8))
        labels = different.input("label", (2,))
        logits = different.fc("other_fc", data, 4)
        different.softmax_loss("loss", logits, labels)
        with pytest.raises(SnapshotError, match="mismatch"):
            load_net(Net(different, seed=0), path)


class TestSolverSnapshot:
    def test_resume_is_bit_identical(self, tmp_path):
        """Train 5, snapshot, train 5 more == train 10 straight."""
        config = SolverConfig(base_lr=0.05, momentum=0.9, lr_policy="step",
                              gamma=0.5, stepsize=4)
        batches = [make_inputs(seed=s) for s in range(10)]

        straight = SGDSolver(Net(small_spec(), seed=7), config)
        for batch in batches:
            straight.step(batch)

        first_half = SGDSolver(Net(small_spec(), seed=7), config)
        for batch in batches[:5]:
            first_half.step(batch)
        path = tmp_path / "state.npz"
        save_solver_state(first_half, path)

        resumed = SGDSolver(Net(small_spec(), seed=123), config)
        load_solver_state(resumed, path)
        assert resumed.iteration == 5
        for batch in batches[5:]:
            resumed.step(batch)

        for a, b in zip(straight.net.params, resumed.net.params):
            np.testing.assert_array_equal(a.data, b.data)

    def test_lr_schedule_position_restored(self, tmp_path):
        config = SolverConfig(base_lr=1.0, lr_policy="step", gamma=0.1,
                              stepsize=3)
        solver = SGDSolver(Net(small_spec(), seed=0), config)
        for _ in range(4):
            solver.step(make_inputs())
        path = tmp_path / "state.npz"
        save_solver_state(solver, path)

        resumed = SGDSolver(Net(small_spec(), seed=0), config)
        load_solver_state(resumed, path)
        assert resumed.learning_rate == pytest.approx(0.1)

    def test_weights_only_snapshot_rejected_as_state(self, tmp_path):
        net = Net(small_spec(), seed=0)
        path = tmp_path / "weights.npz"
        save_net(net, path)
        solver = SGDSolver(Net(small_spec(), seed=0))
        with pytest.raises(SnapshotError, match="solver-state"):
            load_solver_state(solver, path)
