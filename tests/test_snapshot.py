"""Tests for snapshot/restore (.caffemodel / .solverstate equivalents)."""

import numpy as np
import pytest

from repro.caffe import (
    Net,
    SGDSolver,
    SnapshotError,
    SolverConfig,
    load_net,
    load_solver_state,
    save_net,
    save_solver_state,
)
from repro.caffe.netspec import NetSpec

from .test_net_solver import make_inputs
from .test_netspec import small_spec


class TestNetSnapshot:
    def test_roundtrip(self, tmp_path):
        net = Net(small_spec(), seed=3)
        path = tmp_path / "weights.npz"
        save_net(net, path)
        other = Net(small_spec(), seed=99)
        load_net(other, path)
        for a, b in zip(net.params, other.params):
            np.testing.assert_array_equal(a.data, b.data)

    def test_bn_running_stats_included(self, tmp_path):
        net = Net(small_spec(), seed=0)
        # Run a few train-mode forwards so running stats move off init.
        for seed in range(3):
            net.forward(make_inputs(seed=seed), train=True)
        path = tmp_path / "weights.npz"
        save_net(net, path)
        other = Net(small_spec(), seed=1)
        load_net(other, path)
        same_eval = other.forward(make_inputs(seed=9), train=False)
        reference = net.forward(make_inputs(seed=9), train=False)
        np.testing.assert_allclose(
            same_eval["fc"], reference["fc"], rtol=1e-5
        )

    def test_mismatched_spec_rejected(self, tmp_path):
        net = Net(small_spec(), seed=0)
        path = tmp_path / "weights.npz"
        save_net(net, path)

        different = NetSpec("other")
        data = different.input("data", (2, 3, 8, 8))
        labels = different.input("label", (2,))
        logits = different.fc("other_fc", data, 4)
        different.softmax_loss("loss", logits, labels)
        with pytest.raises(SnapshotError, match="mismatch"):
            load_net(Net(different, seed=0), path)


class TestSolverSnapshot:
    def test_resume_is_bit_identical(self, tmp_path):
        """Train 5, snapshot, train 5 more == train 10 straight."""
        config = SolverConfig(base_lr=0.05, momentum=0.9, lr_policy="step",
                              gamma=0.5, stepsize=4)
        batches = [make_inputs(seed=s) for s in range(10)]

        straight = SGDSolver(Net(small_spec(), seed=7), config)
        for batch in batches:
            straight.step(batch)

        first_half = SGDSolver(Net(small_spec(), seed=7), config)
        for batch in batches[:5]:
            first_half.step(batch)
        path = tmp_path / "state.npz"
        save_solver_state(first_half, path)

        resumed = SGDSolver(Net(small_spec(), seed=123), config)
        load_solver_state(resumed, path)
        assert resumed.iteration == 5
        for batch in batches[5:]:
            resumed.step(batch)

        for a, b in zip(straight.net.params, resumed.net.params):
            np.testing.assert_array_equal(a.data, b.data)

    def test_lr_schedule_position_restored(self, tmp_path):
        config = SolverConfig(base_lr=1.0, lr_policy="step", gamma=0.1,
                              stepsize=3)
        solver = SGDSolver(Net(small_spec(), seed=0), config)
        for _ in range(4):
            solver.step(make_inputs())
        path = tmp_path / "state.npz"
        save_solver_state(solver, path)

        resumed = SGDSolver(Net(small_spec(), seed=0), config)
        load_solver_state(resumed, path)
        assert resumed.learning_rate == pytest.approx(0.1)

    def test_weights_only_snapshot_rejected_as_state(self, tmp_path):
        net = Net(small_spec(), seed=0)
        path = tmp_path / "weights.npz"
        save_net(net, path)
        solver = SGDSolver(Net(small_spec(), seed=0))
        with pytest.raises(SnapshotError, match="solver-state"):
            load_solver_state(solver, path)

    def test_rng_state_restored(self, tmp_path):
        """The net's RNG stream (dropout masks) continues where the
        snapshot left it, even if the restored net drew differently."""
        solver = SGDSolver(Net(small_spec(), seed=0))
        solver.net._rng.random(13)  # advance the stream off its seed
        path = tmp_path / "state.npz"
        save_solver_state(solver, path)
        expected = solver.net._rng.random(4)

        resumed = SGDSolver(Net(small_spec(), seed=0))
        resumed.net._rng.random(99)  # desynchronize before restoring
        load_solver_state(resumed, path)
        np.testing.assert_array_equal(resumed.net._rng.random(4), expected)

    def test_dataset_cursor_round_trips(self, tmp_path):
        solver = SGDSolver(Net(small_spec(), seed=0))
        solver.step(make_inputs())
        path = tmp_path / "state.npz"
        save_solver_state(solver, path, cursor=7)
        assert load_solver_state(
            SGDSolver(Net(small_spec(), seed=0)), path
        ) == 7

    def test_cursor_absent_returns_none(self, tmp_path):
        solver = SGDSolver(Net(small_spec(), seed=0))
        path = tmp_path / "state.npz"
        save_solver_state(solver, path)
        assert load_solver_state(
            SGDSolver(Net(small_spec(), seed=0)), path
        ) is None


class TestDtypeChecking:
    """A snapshot must never silently cast into a mismatched net."""

    def _float64_copy(self, path, out):
        with np.load(path) as archive:
            payload = {}
            for name in archive.files:
                stored = archive[name]
                payload[name] = (
                    stored.astype(np.float64)
                    if stored.dtype == np.float32 else stored
                )
        np.savez(out, **payload)

    def test_load_net_rejects_dtype_mismatch(self, tmp_path):
        net = Net(small_spec(), seed=0)
        path = tmp_path / "weights.npz"
        save_net(net, path)
        widened = tmp_path / "weights64.npz"
        self._float64_copy(path, widened)
        with pytest.raises(SnapshotError, match="refusing to cast"):
            load_net(Net(small_spec(), seed=0), widened)

    def test_load_solver_state_rejects_dtype_mismatch(self, tmp_path):
        solver = SGDSolver(Net(small_spec(), seed=0))
        solver.step(make_inputs())
        path = tmp_path / "state.npz"
        save_solver_state(solver, path)
        widened = tmp_path / "state64.npz"
        self._float64_copy(path, widened)
        with pytest.raises(SnapshotError, match="refusing to cast"):
            load_solver_state(SGDSolver(Net(small_spec(), seed=0)), widened)
