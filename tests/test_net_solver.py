"""Tests for the Net engine, the SGD solver and flat parameter views."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.caffe import FlatParams, Net, SGDSolver, SolverConfig
from repro.caffe.layers import LayerError
from repro.caffe.netspec import NetSpec

from .test_netspec import small_spec


def make_inputs(batch=2, channels=3, size=8, classes=4, seed=0):
    rng = np.random.default_rng(seed)
    return {
        "data": rng.standard_normal((batch, channels, size, size)).astype(
            np.float32
        ),
        "label": rng.integers(0, classes, batch),
    }


class TestNet:
    def test_same_seed_same_weights(self):
        a = Net(small_spec(), seed=5)
        b = Net(small_spec(), seed=5)
        for pa, pb in zip(a.params, b.params):
            np.testing.assert_array_equal(pa.data, pb.data)

    def test_different_seed_different_weights(self):
        a = Net(small_spec(), seed=1)
        b = Net(small_spec(), seed=2)
        assert any(
            not np.array_equal(pa.data, pb.data)
            for pa, pb in zip(a.params, b.params)
        )

    def test_forward_returns_all_blobs(self):
        net = Net(small_spec(), seed=0)
        outputs = net.forward(make_inputs(), train=True)
        assert {"loss", "acc", "fc"} <= set(outputs)

    def test_missing_input_rejected(self):
        net = Net(small_spec(), seed=0)
        with pytest.raises(LayerError, match="missing input"):
            net.forward({"data": np.zeros((2, 3, 8, 8))}, train=True)

    def test_wrong_input_shape_rejected(self):
        net = Net(small_spec(), seed=0)
        inputs = make_inputs()
        inputs["data"] = inputs["data"][:, :, :4, :4]
        with pytest.raises(LayerError, match="shape"):
            net.forward(inputs, train=True)

    def test_batch_dimension_is_free(self):
        net = Net(small_spec(batch=2), seed=0)
        outputs = net.forward(make_inputs(batch=7), train=False)
        assert outputs["fc"].shape == (7, 4)

    def test_backward_before_forward_rejected(self):
        net = Net(small_spec(), seed=0)
        with pytest.raises(LayerError):
            net.backward()

    def test_backward_fills_param_diffs(self):
        net = Net(small_spec(), seed=0)
        net.zero_param_diffs()
        net.forward(make_inputs(), train=True)
        net.backward()
        assert any(np.abs(p.diff).sum() > 0 for p in net.params)

    def test_copy_params_from(self):
        a = Net(small_spec(), seed=1)
        b = Net(small_spec(), seed=2)
        b.copy_params_from(a)
        for pa, pb in zip(a.params, b.params):
            np.testing.assert_array_equal(pa.data, pb.data)

    def test_total_loss_sums_loss_blobs(self):
        spec = NetSpec()
        data = spec.input("data", (2, 4))
        labels = spec.input("label", (2,))
        l1 = spec.fc("fc1", data, 3)
        l2 = spec.fc("fc2", data, 3)
        spec.softmax_loss("lossA", l1, labels)
        spec.softmax_loss("lossB", l2, labels, loss_weight=0.5)
        net = Net(spec, seed=0)
        outputs = net.forward(
            {"data": np.zeros((2, 4), dtype=np.float32),
             "label": np.asarray([0, 1])},
            train=True,
        )
        expected = float(outputs["lossA"][0] + outputs["lossB"][0])
        assert net.total_loss() == pytest.approx(expected)

    def test_blob_access(self):
        net = Net(small_spec(), seed=0)
        net.forward(make_inputs(), train=True)
        assert net.blob("fc").shape == (2, 4)
        with pytest.raises(LayerError):
            net.blob("ghost")


class TestSolverConfig:
    def test_fixed_policy(self):
        config = SolverConfig(base_lr=0.1, lr_policy="fixed")
        assert config.learning_rate(0) == config.learning_rate(999) == 0.1

    def test_step_policy(self):
        config = SolverConfig(
            base_lr=0.1, lr_policy="step", gamma=0.1, stepsize=100
        )
        assert config.learning_rate(99) == pytest.approx(0.1)
        assert config.learning_rate(100) == pytest.approx(0.01)
        assert config.learning_rate(250) == pytest.approx(0.001)

    def test_multistep_policy(self):
        config = SolverConfig(
            base_lr=1.0, lr_policy="multistep", gamma=0.5,
            stepvalues=(10, 20),
        )
        assert config.learning_rate(5) == 1.0
        assert config.learning_rate(15) == 0.5
        assert config.learning_rate(25) == 0.25

    def test_poly_policy_reaches_zero(self):
        config = SolverConfig(
            base_lr=1.0, lr_policy="poly", power=1.0, max_iter=100
        )
        assert config.learning_rate(0) == 1.0
        assert config.learning_rate(50) == pytest.approx(0.5)
        assert config.learning_rate(100) == pytest.approx(0.0)

    def test_inv_policy(self):
        config = SolverConfig(
            base_lr=1.0, lr_policy="inv", gamma=1.0, power=1.0
        )
        assert config.learning_rate(1) == pytest.approx(0.5)

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError):
            SolverConfig(lr_policy="cosine")

    def test_invalid_momentum_rejected(self):
        with pytest.raises(ValueError):
            SolverConfig(momentum=1.0)

    @settings(max_examples=25, deadline=None)
    @given(
        policy=st.sampled_from(["step", "multistep", "poly", "inv"]),
        iteration=st.integers(0, 10_000),
    )
    def test_lr_never_exceeds_base_property(self, policy, iteration):
        config = SolverConfig(
            base_lr=0.1, lr_policy=policy, gamma=0.5, stepsize=100,
            stepvalues=(100, 500), power=1.0, max_iter=10_000,
        )
        lr = config.learning_rate(iteration)
        assert 0.0 <= lr <= 0.1 + 1e-12


class TestSGDSolver:
    def test_momentum_update_matches_caffe_rule(self):
        # One FC layer, hand-computed: V1 = lr*g; W1 = W0 - V1;
        # V2 = mu*V1 + lr*g2; W2 = W1 - V2.
        spec = NetSpec()
        data = spec.input("data", (1, 2))
        labels = spec.input("label", (1,))
        logits = spec.fc("fc", data, 2, bias=False)
        spec.softmax_loss("loss", logits, labels)
        net = Net(spec, seed=0)
        solver = SGDSolver(
            net, SolverConfig(base_lr=0.5, momentum=0.9, lr_policy="fixed")
        )
        inputs = {
            "data": np.asarray([[1.0, 0.0]], dtype=np.float32),
            "label": np.asarray([0]),
        }
        weight = net.params[0]
        w0 = weight.data.copy()

        solver.compute_gradients(inputs)
        g1 = weight.diff.copy()
        solver.apply_update()
        np.testing.assert_allclose(
            weight.data, w0 - 0.5 * g1, rtol=1e-5
        )
        v1 = 0.5 * g1

        solver.compute_gradients(inputs)
        g2 = weight.diff.copy()
        solver.apply_update()
        v2 = 0.9 * v1 + 0.5 * g2
        np.testing.assert_allclose(
            weight.data, w0 - v1 - v2, rtol=1e-5
        )

    def test_weight_decay_applied_to_weights_not_biases(self):
        spec = NetSpec()
        data = spec.input("data", (1, 2))
        labels = spec.input("label", (1,))
        logits = spec.fc("fc", data, 2)
        spec.softmax_loss("loss", logits, labels)
        net = Net(spec, seed=0)
        solver = SGDSolver(
            net,
            SolverConfig(base_lr=1.0, momentum=0.0, weight_decay=0.1),
        )
        inputs = {
            "data": np.zeros((1, 2), dtype=np.float32),
            "label": np.asarray([0]),
        }
        weight, bias = net.params
        w0 = weight.data.copy()
        solver.compute_gradients(inputs)
        grad_w = weight.diff.copy()  # zero input -> zero weight grad
        np.testing.assert_allclose(grad_w, 0.0)
        grad_b = bias.diff.copy()
        b0 = bias.data.copy()
        solver.apply_update()
        # Weights decay; biases (decay_mult=0, lr_mult=2) do not decay.
        np.testing.assert_allclose(weight.data, w0 - 0.1 * w0, rtol=1e-5)
        np.testing.assert_allclose(bias.data, b0 - 2.0 * grad_b, rtol=1e-5)

    def test_step_reduces_loss_on_separable_task(self):
        net = Net(small_spec(), seed=0)
        solver = SGDSolver(net, SolverConfig(base_lr=0.1, momentum=0.9))
        inputs = make_inputs()
        first = solver.step(inputs)["loss"]
        for _ in range(30):
            last = solver.step(inputs)["loss"]
        assert last < first

    def test_step_reports_metrics_and_lr(self):
        net = Net(small_spec(), seed=0)
        solver = SGDSolver(net, SolverConfig(base_lr=0.05))
        stats = solver.step(make_inputs())
        assert {"loss", "lr", "acc"} <= set(stats)
        assert stats["lr"] == 0.05

    def test_iteration_counter_advances(self):
        net = Net(small_spec(), seed=0)
        solver = SGDSolver(net)
        solver.step(make_inputs())
        solver.advance_iteration()
        assert solver.iteration == 2

    def test_evaluate_averages_batches(self):
        net = Net(small_spec(), seed=0)
        solver = SGDSolver(net)
        batches = [make_inputs(seed=s) for s in range(3)]
        metrics = solver.evaluate(batches)
        assert set(metrics) >= {"loss", "acc"}

    def test_evaluate_requires_batches(self):
        net = Net(small_spec(), seed=0)
        with pytest.raises(ValueError):
            SGDSolver(net).evaluate([])


class TestFlatParams:
    def test_roundtrip(self):
        net = Net(small_spec(), seed=0)
        flat = FlatParams(net)
        vector = flat.get_vector()
        assert vector.size == net.param_count()
        flat.set_vector(vector * 2.0)
        np.testing.assert_allclose(flat.get_vector(), vector * 2.0)

    def test_set_vector_reshapes_into_blobs(self):
        net = Net(small_spec(), seed=0)
        flat = FlatParams(net)
        flat.set_vector(np.arange(flat.count, dtype=np.float32))
        first = net.params[0]
        np.testing.assert_array_equal(
            first.data.ravel(), np.arange(first.count, dtype=np.float32)
        )

    def test_grad_vector_roundtrip(self):
        net = Net(small_spec(), seed=0)
        flat = FlatParams(net)
        grads = np.random.default_rng(0).standard_normal(
            flat.count
        ).astype(np.float32)
        flat.set_grad_vector(grads)
        np.testing.assert_allclose(flat.get_grad_vector(), grads)

    def test_add_to_params(self):
        net = Net(small_spec(), seed=0)
        flat = FlatParams(net)
        before = flat.get_vector()
        delta = np.ones(flat.count, dtype=np.float32)
        flat.add_to_params(delta, scale=-0.5)
        np.testing.assert_allclose(flat.get_vector(), before - 0.5)

    def test_size_mismatch_rejected(self):
        net = Net(small_spec(), seed=0)
        flat = FlatParams(net)
        with pytest.raises(ValueError):
            flat.set_vector(np.zeros(flat.count + 1, dtype=np.float32))
        with pytest.raises(ValueError):
            flat.set_grad_vector(np.zeros(1, dtype=np.float32))
        with pytest.raises(ValueError):
            flat.add_to_params(np.zeros(1, dtype=np.float32))

    def test_nbytes(self):
        net = Net(small_spec(), seed=0)
        flat = FlatParams(net)
        assert flat.nbytes == flat.count * 4
