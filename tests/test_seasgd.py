"""Tests for the SEASGD update rules (paper eqs. (2)-(7))."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.seasgd import (
    apply_increment_global,
    apply_increment_local,
    easgd_server_update,
    easgd_worker_update,
    seasgd_exchange,
    weight_increment,
)

FLOATS = st.floats(
    min_value=-100.0, max_value=100.0, allow_nan=False, width=32
)


def vec(*values):
    return np.asarray(values, dtype=np.float32)


class TestUpdateRules:
    def test_weight_increment_eq5(self):
        delta = weight_increment(vec(2.0, 4.0), vec(1.0, 1.0), 0.5)
        np.testing.assert_allclose(delta, [0.5, 1.5])

    def test_local_update_eq6(self):
        np.testing.assert_allclose(
            apply_increment_local(vec(2.0), vec(0.5)), [1.5]
        )

    def test_global_update_eq7(self):
        np.testing.assert_allclose(
            apply_increment_global(vec(1.0), vec(0.5)), [1.5]
        )

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            weight_increment(vec(1.0, 2.0), vec(1.0), 0.2)

    def test_exchange_pulls_both_toward_each_other(self):
        local, global_w, _ = seasgd_exchange(vec(10.0), vec(0.0), 0.2)
        assert local[0] == pytest.approx(8.0)
        assert global_w[0] == pytest.approx(2.0)

    def test_zero_difference_is_fixed_point(self):
        local, global_w, increment = seasgd_exchange(
            vec(3.0, -1.0), vec(3.0, -1.0), 0.2
        )
        np.testing.assert_allclose(increment, 0.0)
        np.testing.assert_allclose(local, [3.0, -1.0])
        np.testing.assert_allclose(global_w, [3.0, -1.0])


class TestEasgdEquivalence:
    """SEASGD (eqs. 5-7) must equal classic EASGD (eqs. 3-4) exactly."""

    @settings(max_examples=50, deadline=None)
    @given(
        local=hnp.arrays(np.float32, 8, elements=FLOATS),
        global_w=hnp.arrays(np.float32, 8, elements=FLOATS),
        alpha=st.floats(min_value=0.015625, max_value=1.0, width=32),
    )
    def test_worker_side(self, local, global_w, alpha):
        new_local, _, _ = seasgd_exchange(local, global_w, alpha)
        reference = easgd_worker_update(local, global_w, alpha)
        np.testing.assert_allclose(new_local, reference, rtol=1e-6,
                                   atol=1e-5)

    @settings(max_examples=50, deadline=None)
    @given(
        local=hnp.arrays(np.float32, 8, elements=FLOATS),
        global_w=hnp.arrays(np.float32, 8, elements=FLOATS),
        alpha=st.floats(min_value=0.015625, max_value=1.0, width=32),
    )
    def test_server_side(self, local, global_w, alpha):
        _, new_global, _ = seasgd_exchange(local, global_w, alpha)
        reference = easgd_server_update(local, global_w, alpha)
        np.testing.assert_allclose(new_global, reference, rtol=1e-6,
                                   atol=1e-5)


class TestConservation:
    @settings(max_examples=50, deadline=None)
    @given(
        local=hnp.arrays(np.float32, 16, elements=FLOATS),
        global_w=hnp.arrays(np.float32, 16, elements=FLOATS),
        alpha=st.floats(min_value=0.015625, max_value=1.0, width=32),
    )
    def test_elastic_symmetry_property(self, local, global_w, alpha):
        """What the replica loses, the centre gains: the exchange moves
        exactly +/- increment on the two sides (elastic symmetry)."""
        new_local, new_global, increment = seasgd_exchange(
            local, global_w, alpha
        )
        np.testing.assert_allclose(
            local - new_local, increment, rtol=1e-5, atol=1e-5
        )
        np.testing.assert_allclose(
            new_global - global_w, increment, rtol=1e-5, atol=1e-5
        )

    @settings(max_examples=30, deadline=None)
    @given(
        local=hnp.arrays(np.float32, 8, elements=FLOATS),
        global_w=hnp.arrays(np.float32, 8, elements=FLOATS),
    )
    def test_alpha_one_swaps_to_global(self, local, global_w):
        """With alpha=1 the replica lands exactly on the old global."""
        new_local, new_global, _ = seasgd_exchange(local, global_w, 1.0)
        np.testing.assert_allclose(new_local, global_w, atol=1e-4)
        np.testing.assert_allclose(
            new_global, global_w + (local - global_w), atol=1e-4
        )

    def test_repeated_exchange_converges(self):
        """Alternating exchanges contract the local-global gap."""
        local = vec(10.0)
        global_w = vec(-10.0)
        gaps = []
        for _ in range(20):
            local, global_w, _ = seasgd_exchange(local, global_w, 0.2)
            gaps.append(abs(float(local[0] - global_w[0])))
        assert gaps[-1] < 0.01 * gaps[0]
        assert all(b <= a + 1e-6 for a, b in zip(gaps, gaps[1:]))
