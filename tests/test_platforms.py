"""Tests for the four platform drivers and their cross-consistency."""

import numpy as np
import pytest

from repro.caffe import SolverConfig, SyntheticImageDataset
from repro.platforms import (
    bvlc_caffe,
    caffe_mpi,
    evaluate_weights,
    iterations_per_epoch,
    mpi_caffe,
    shmcaffe,
)

from .test_netspec import small_spec


@pytest.fixture()
def dataset():
    return SyntheticImageDataset(
        num_classes=4, image_size=8, train_per_class=40, test_per_class=8,
        noise=0.7, seed=6,
    )


def spec_factory():
    return small_spec(batch=4)


SOLVER = SolverConfig(base_lr=0.05, momentum=0.9)


class TestStandalone:
    def test_losses_recorded_per_iteration(self, dataset):
        result = bvlc_caffe.train_standalone(
            spec_factory, dataset, SOLVER, batch_size=4, iterations=10
        )
        assert len(result.losses) == 10
        assert result.platform == "caffe"
        assert result.num_workers == 1

    def test_eval_every(self, dataset):
        result = bvlc_caffe.train_standalone(
            spec_factory, dataset, SOLVER, batch_size=4, iterations=10,
            eval_every=5,
        )
        assert [record.iteration for record in result.evals] == [5, 10]

    def test_final_weights_evaluable(self, dataset):
        result = bvlc_caffe.train_standalone(
            spec_factory, dataset, SOLVER, batch_size=4, iterations=30
        )
        metrics = evaluate_weights(
            spec_factory, result.final_weights, dataset
        )
        assert metrics["acc"] > 0.3  # clearly above 0.25 chance


class TestMultiGpuEquivalence:
    def test_caffe_nccl_equals_mpicaffe_allreduce(self, dataset):
        """Both SSGD implementations average the same gradients over the
        same shards from the same init: final weights must match."""
        a = bvlc_caffe.train_multi_gpu(
            spec_factory, dataset, SOLVER, batch_size=4, iterations=8,
            num_workers=4, seed=3,
        )
        b = mpi_caffe.train(
            spec_factory, dataset, SOLVER, batch_size=4, iterations=8,
            num_workers=4, seed=3,
        )
        np.testing.assert_allclose(
            a.final_weights, b.final_weights, rtol=1e-4, atol=1e-5
        )

    def test_caffe_mpi_star_matches_allreduce_when_deterministic(
        self, dataset
    ):
        """The star topology averages the same per-iteration gradients as
        allreduce; weight trajectories must agree (modulo float order)."""
        a = caffe_mpi.train(
            spec_factory, dataset, SOLVER, batch_size=4, iterations=5,
            num_workers=3, seed=3,
        )
        b = mpi_caffe.train(
            spec_factory, dataset, SOLVER, batch_size=4, iterations=5,
            num_workers=3, seed=3,
        )
        np.testing.assert_allclose(
            a.final_weights, b.final_weights, rtol=1e-3, atol=1e-4
        )

    def test_multi_gpu_requires_multiple_workers(self, dataset):
        with pytest.raises(ValueError):
            bvlc_caffe.train_multi_gpu(
                spec_factory, dataset, SOLVER, batch_size=4, iterations=2,
                num_workers=1,
            )
        with pytest.raises(ValueError):
            caffe_mpi.train(
                spec_factory, dataset, SOLVER, batch_size=4, iterations=2,
                num_workers=1,
            )
        with pytest.raises(ValueError):
            mpi_caffe.train(
                spec_factory, dataset, SOLVER, batch_size=4, iterations=2,
                num_workers=1,
            )


class TestShmCaffeDrivers:
    def test_async_driver(self, dataset):
        result = shmcaffe.train_async(
            spec_factory, dataset, SOLVER, batch_size=4, iterations=8,
            num_workers=2,
        )
        assert result.platform == "shmcaffe_a"
        assert result.evals  # final evaluation always appended
        assert np.isfinite(result.final_accuracy)

    def test_hybrid_driver(self, dataset):
        result = shmcaffe.train_hybrid(
            spec_factory, dataset, SOLVER, batch_size=4, iterations=8,
            num_workers=4, group_size=2,
        )
        assert result.platform == "shmcaffe_h"

    def test_hybrid_needs_group(self, dataset):
        with pytest.raises(ValueError):
            shmcaffe.train_hybrid(
                spec_factory, dataset, SOLVER, batch_size=4, iterations=2,
                num_workers=2, group_size=1,
            )

    def test_async_learns(self, dataset):
        result = shmcaffe.train_async(
            spec_factory, dataset, SOLVER, batch_size=4, iterations=50,
            num_workers=2,
        )
        assert result.final_accuracy > 0.4

    def test_update_interval_amortises_exchanges(self, dataset):
        result = shmcaffe.train_async(
            spec_factory, dataset, SOLVER, batch_size=4, iterations=9,
            num_workers=2, update_interval=3,
        )
        assert result.platform == "shmcaffe_a"
        assert len(result.losses) >= 9


class TestHelpers:
    def test_iterations_per_epoch(self, dataset):
        assert iterations_per_epoch(dataset, 4, 1) == 40
        assert iterations_per_epoch(dataset, 4, 4) == 10
        assert iterations_per_epoch(dataset, 1000, 16) == 1  # floor of 1

    def test_accuracy_curve_shape(self, dataset):
        result = bvlc_caffe.train_standalone(
            spec_factory, dataset, SOLVER, batch_size=4, iterations=10,
            eval_every=5,
        )
        curve = result.accuracy_curve()
        assert len(curve) == 2
        assert curve[0][0] == 5

    def test_empty_evals_give_nan(self, dataset):
        result = bvlc_caffe.train_standalone(
            spec_factory, dataset, SOLVER, batch_size=4, iterations=2
        )
        assert np.isnan(result.final_accuracy)
        assert np.isnan(result.final_loss)
