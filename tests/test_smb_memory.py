"""Unit tests for SMB segments and the server-side memory pool."""

import threading

import numpy as np
import pytest

from repro.smb.errors import (
    CapacityError,
    SegmentExistsError,
    SegmentRangeError,
    UnknownKeyError,
)
from repro.smb.memory import PARALLEL_ACCUMULATE_BYTES, MemoryPool, Segment


def make_segment(nbytes=64, name="seg", key=1):
    return Segment(
        name=name, shm_key=key, buffer=np.zeros(nbytes, dtype=np.uint8)
    )


class TestSegment:
    def test_read_returns_written_bytes(self):
        segment = make_segment()
        segment.write(0, b"hello")
        assert segment.read(0, 5) == b"hello"

    def test_write_at_offset(self):
        segment = make_segment()
        segment.write(10, b"abc")
        assert segment.read(9, 5) == b"\x00abc\x00"

    def test_write_bumps_version(self):
        segment = make_segment()
        assert segment.version == 0
        v1 = segment.write(0, b"x")
        v2 = segment.write(0, b"y")
        assert (v1, v2) == (1, 2)

    def test_read_does_not_bump_version(self):
        segment = make_segment()
        segment.write(0, b"x")
        segment.read(0, 1)
        assert segment.version == 1

    @pytest.mark.parametrize("offset,nbytes", [(-1, 4), (0, 65), (60, 8)])
    def test_out_of_range_read_raises(self, offset, nbytes):
        segment = make_segment()
        with pytest.raises(SegmentRangeError):
            segment.read(offset, nbytes)

    def test_out_of_range_write_raises(self):
        segment = make_segment()
        with pytest.raises(SegmentRangeError):
            segment.write(60, b"too long")

    def test_accumulate_adds_float32(self):
        dst = make_segment(16, "dst", 1)
        src = make_segment(16, "src", 2)
        dst.write(0, np.asarray([1, 2, 3, 4], dtype=np.float32).tobytes())
        src.write(0, np.asarray([10, 20, 30, 40], dtype=np.float32).tobytes())
        dst.accumulate_from(src)
        out = np.frombuffer(dst.read(0, 16), dtype=np.float32)
        np.testing.assert_allclose(out, [11, 22, 33, 44])

    def test_accumulate_with_scale(self):
        dst = make_segment(8, "dst", 1)
        src = make_segment(8, "src", 2)
        src.write(0, np.asarray([2, 4], dtype=np.float32).tobytes())
        dst.accumulate_from(src, scale=0.5)
        out = np.frombuffer(dst.read(0, 8), dtype=np.float32)
        np.testing.assert_allclose(out, [1, 2])

    def test_accumulate_partial_count(self):
        dst = make_segment(16, "dst", 1)
        src = make_segment(16, "src", 2)
        src.write(0, np.asarray([1, 1, 1, 1], dtype=np.float32).tobytes())
        dst.accumulate_from(src, count=2)
        out = np.frombuffer(dst.read(0, 16), dtype=np.float32)
        np.testing.assert_allclose(out, [1, 1, 0, 0])

    def test_accumulate_range_checked(self):
        dst = make_segment(8, "dst", 1)
        src = make_segment(16, "src", 2)
        with pytest.raises(SegmentRangeError):
            dst.accumulate_from(src)  # src larger than dst

    def test_concurrent_accumulates_are_atomic(self):
        dst = make_segment(4000, "dst", 1)
        sources = [make_segment(4000, f"s{i}", 10 + i) for i in range(8)]
        ones = np.ones(1000, dtype=np.float32).tobytes()
        for src in sources:
            src.write(0, ones)

        def worker(src):
            for _ in range(25):
                dst.accumulate_from(src)

        threads = [
            threading.Thread(target=worker, args=(s,)) for s in sources
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        out = np.frombuffer(dst.read(0, 4000), dtype=np.float32)
        np.testing.assert_allclose(out, 8 * 25)

    def test_self_accumulate_full_overlap_is_exact(self):
        """dst and src are the *same* segment above the parallel
        threshold: the chunked path would race reads against writes, so
        aliasing must fall back to the serial (overlap-safe) path."""
        nbytes = PARALLEL_ACCUMULATE_BYTES
        seg = make_segment(nbytes, "big", 1)
        rng = np.random.default_rng(7)
        data = rng.standard_normal(nbytes // 4).astype(np.float32)
        seg.write(0, data.tobytes())
        seg.accumulate_from(seg)
        out = np.frombuffer(seg.read(0, nbytes), dtype=np.float32)
        np.testing.assert_array_equal(out, data + data)

    def test_overlapping_ranges_in_one_segment_are_exact(self):
        """Shifted overlap within one segment: every element must see the
        *original* source values, as numpy's serial overlap buffering
        guarantees — not values another chunk thread already rewrote."""
        shift = 256  # elements
        count = PARALLEL_ACCUMULATE_BYTES // 4
        nbytes = PARALLEL_ACCUMULATE_BYTES + shift * 4
        seg = make_segment(nbytes, "big", 1)
        rng = np.random.default_rng(11)
        data = rng.standard_normal(nbytes // 4).astype(np.float32)
        seg.write(0, data.tobytes())
        seg.accumulate_from(seg, src_offset=shift * 4, count=count)
        out = np.frombuffer(seg.read(0, nbytes), dtype=np.float32)
        np.testing.assert_array_equal(
            out[:count], data[:count] + data[shift:shift + count]
        )
        np.testing.assert_array_equal(out[count:], data[count:])

    def test_disjoint_parallel_accumulate_still_exact(self):
        """Non-aliased segments above the threshold keep the chunked
        path and stay bit-exact with the serial result."""
        nbytes = PARALLEL_ACCUMULATE_BYTES
        dst = make_segment(nbytes, "dst", 1)
        src = make_segment(nbytes, "src", 2)
        rng = np.random.default_rng(13)
        base = rng.standard_normal(nbytes // 4).astype(np.float32)
        step = rng.standard_normal(nbytes // 4).astype(np.float32)
        dst.write(0, base.tobytes())
        src.write(0, step.tobytes())
        dst.accumulate_from(src)
        out = np.frombuffer(dst.read(0, nbytes), dtype=np.float32)
        np.testing.assert_array_equal(out, base + step)

    def test_wait_for_update_times_out(self):
        segment = make_segment()
        assert segment.wait_for_update(0, timeout=0.01) == 0

    def test_wait_for_update_wakes_on_write(self):
        segment = make_segment()
        seen = []

        def waiter():
            seen.append(segment.wait_for_update(0, timeout=5.0))

        thread = threading.Thread(target=waiter)
        thread.start()
        segment.write(0, b"x")
        thread.join(timeout=5.0)
        assert seen == [1]


class TestSegmentWaiters:
    """Event-style waiters: the non-blocking counterpart of
    wait_for_update that the TCP event loop parks WAIT_UPDATEs on."""

    def test_waiter_fires_on_write(self):
        segment = make_segment()
        fired = []
        waiter = segment.add_waiter(0, fired.append)
        assert waiter is not None
        assert fired == []
        segment.write(0, b"x")
        assert fired == [1]

    def test_waiter_fires_on_accumulate(self):
        dst = make_segment(8, "dst", 1)
        src = make_segment(8, "src", 2)
        src.write(0, np.ones(2, dtype=np.float32).tobytes())
        fired = []
        dst.add_waiter(0, fired.append)
        dst.accumulate_from(src)
        assert fired == [1]

    def test_already_satisfied_registration_returns_none(self):
        segment = make_segment()
        segment.write(0, b"x")
        assert segment.add_waiter(0, lambda _v: None) is None

    def test_threshold_respected(self):
        segment = make_segment()
        fired = []
        segment.add_waiter(2, fired.append)
        segment.write(0, b"a")
        segment.write(0, b"b")
        assert fired == []  # version 2 is not > 2
        segment.write(0, b"c")
        assert fired == [3]

    def test_claimed_waiter_never_fires(self):
        """claim() arbitrates the notify/timeout/teardown race: once a
        competitor claimed the waiter, the version bump must not produce
        a second completion."""
        segment = make_segment()
        fired = []
        waiter = segment.add_waiter(0, fired.append)
        assert waiter.claim()
        assert not waiter.claim()
        segment.remove_waiter(waiter)
        segment.write(0, b"x")
        assert fired == []

    def test_waiter_fires_exactly_once(self):
        segment = make_segment()
        fired = []
        segment.add_waiter(0, fired.append)
        segment.write(0, b"x")
        segment.write(0, b"y")
        assert fired == [1]


class TestMemoryPool:
    def test_create_and_lookup(self):
        pool = MemoryPool(capacity=1024)
        segment = pool.create("weights", 512)
        assert pool.by_shm_key(segment.shm_key) is segment
        assert pool.by_name("weights") is segment

    def test_capacity_enforced(self):
        pool = MemoryPool(capacity=100)
        pool.create("a", 60)
        with pytest.raises(CapacityError):
            pool.create("b", 50)

    def test_capacity_error_carries_details(self):
        pool = MemoryPool(capacity=100)
        pool.create("a", 60)
        with pytest.raises(CapacityError) as info:
            pool.create("b", 50)
        assert info.value.requested == 50
        assert info.value.available == 40

    def test_duplicate_name_rejected(self):
        pool = MemoryPool(capacity=1024)
        pool.create("a", 16)
        with pytest.raises(SegmentExistsError):
            pool.create("a", 16)

    def test_nonpositive_size_rejected(self):
        pool = MemoryPool(capacity=1024)
        with pytest.raises(ValueError):
            pool.create("a", 0)

    def test_attach_grants_distinct_access_keys(self):
        pool = MemoryPool(capacity=1024)
        segment = pool.create("a", 16)
        k1 = pool.attach(segment.shm_key)
        k2 = pool.attach(segment.shm_key)
        assert k1 != k2
        assert pool.by_access_key(k1) is segment
        assert pool.by_access_key(k2) is segment

    def test_attach_validates_expected_size(self):
        pool = MemoryPool(capacity=1024)
        segment = pool.create("a", 16)
        with pytest.raises(SegmentRangeError):
            pool.attach(segment.shm_key, expected_nbytes=32)

    def test_attach_unknown_key(self):
        pool = MemoryPool(capacity=1024)
        with pytest.raises(UnknownKeyError):
            pool.attach(12345)

    def test_free_releases_capacity_and_keys(self):
        pool = MemoryPool(capacity=100)
        segment = pool.create("a", 80)
        access = pool.attach(segment.shm_key)
        pool.free(segment.shm_key)
        assert pool.available == 100
        with pytest.raises(UnknownKeyError):
            pool.by_access_key(access)
        pool.create("b", 80)  # capacity truly returned

    def test_free_unknown_key(self):
        pool = MemoryPool(capacity=100)
        with pytest.raises(UnknownKeyError):
            pool.free(99)

    def test_used_and_available_accounting(self):
        pool = MemoryPool(capacity=100)
        pool.create("a", 30)
        pool.create("b", 20)
        assert pool.used == 50
        assert pool.available == 50

    def test_shm_and_access_keys_never_collide(self):
        pool = MemoryPool(capacity=1 << 20)
        shm_keys = set()
        access_keys = set()
        for index in range(50):
            segment = pool.create(f"s{index}", 8)
            shm_keys.add(segment.shm_key)
            access_keys.add(pool.attach(segment.shm_key))
        assert len(shm_keys) == 50
        assert len(access_keys) == 50
        assert not shm_keys & access_keys

    def test_segments_snapshot(self):
        pool = MemoryPool(capacity=1024)
        pool.create("a", 16)
        pool.create("b", 16)
        assert set(pool.segments()) == {"a", "b"}

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            MemoryPool(capacity=0)
