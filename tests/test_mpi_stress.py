"""Stress and property tests for the mini-MPI substrate under load."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import mpi
from repro.caffe import SolverConfig, SyntheticImageDataset
from repro.platforms import bvlc_caffe

from .test_netspec import small_spec


class TestMessageStorm:
    def test_many_interleaved_tags_stay_fifo_per_channel(self):
        """Hundreds of messages across tags: per-(source, tag) order is
        preserved even when receives interleave tags arbitrarily."""
        messages_per_tag = 50
        tags = (1, 2, 3)

        def main(comm):
            if comm.rank == 0:
                for index in range(messages_per_tag):
                    for tag in tags:
                        comm.send((tag, index), dest=1, tag=tag)
                return None
            received = {tag: [] for tag in tags}
            rng = np.random.default_rng(0)
            order = rng.permutation(
                [tag for tag in tags for _ in range(messages_per_tag)]
            )
            for tag in order:
                payload = comm.recv(source=0, tag=int(tag))
                received[tag].append(payload[1])
            return received

        results = mpi.run_spmd(2, main)
        for tag in tags:
            assert results[1][tag] == list(range(messages_per_tag))

    def test_all_to_all_storm(self):
        """Every rank sends to every rank repeatedly; totals must match."""
        rounds = 20

        def main(comm):
            total = 0
            for round_index in range(rounds):
                for dest in range(comm.size):
                    if dest != comm.rank:
                        comm.send(comm.rank + round_index, dest, tag=7)
                for _ in range(comm.size - 1):
                    total += comm.recv(tag=7)
            return total

        results = mpi.run_spmd(4, main)
        for rank, total in enumerate(results):
            expected = sum(
                other + r
                for r in range(rounds)
                for other in range(4)
                if other != rank
            )
            assert total == expected

    def test_collective_sequences_stay_matched(self):
        """Long alternating sequences of different collectives never
        cross-match (the per-rank tag counters stay in sync)."""

        def main(comm):
            checks = []
            for step in range(30):
                if step % 3 == 0:
                    value = mpi.allreduce(comm, np.asarray([1.0]))
                    checks.append(float(value[0]) == comm.size)
                elif step % 3 == 1:
                    token = mpi.bcast(
                        comm, step if comm.is_master else None
                    )
                    checks.append(token == step)
                else:
                    mpi.barrier(comm)
                    checks.append(True)
            return all(checks)

        assert all(mpi.run_spmd(5, main))


@settings(max_examples=15, deadline=None)
@given(
    size=st.integers(min_value=2, max_value=5),
    payloads=st.lists(
        st.integers(min_value=-1000, max_value=1000),
        min_size=1, max_size=20,
    ),
)
def test_bcast_chain_property(size, payloads):
    """A chain of broadcasts delivers every payload to every rank in
    order, for any world size and payload sequence."""

    def main(comm):
        received = []
        for payload in payloads:
            received.append(
                mpi.bcast(comm, payload if comm.is_master else None)
            )
        return received

    results = mpi.run_spmd(size, main)
    for rank_result in results:
        assert rank_result == payloads


class TestPrefetchedTraining:
    def test_prefetch_path_is_numerically_identical(self):
        """The 10-deep prefetcher must not change the batch sequence."""
        dataset = SyntheticImageDataset(
            num_classes=4, image_size=8, train_per_class=30,
            test_per_class=5, noise=0.7, seed=3,
        )
        config = SolverConfig(base_lr=0.05, momentum=0.9)
        plain = bvlc_caffe.train_standalone(
            lambda: small_spec(batch=4), dataset, config,
            batch_size=4, iterations=12, seed=5, prefetch=False,
        )
        prefetched = bvlc_caffe.train_standalone(
            lambda: small_spec(batch=4), dataset, config,
            batch_size=4, iterations=12, seed=5, prefetch=True,
        )
        np.testing.assert_allclose(plain.losses, prefetched.losses)
        np.testing.assert_array_equal(
            plain.final_weights, prefetched.final_weights
        )
