"""Data-parallel equivalence: the defining property of synchronous SGD.

Averaging per-worker gradients over equal shards is mathematically the
same as one big-batch gradient on the concatenated data.  This holds
layer-for-layer only without cross-sample coupling, so the spec is
BN-free (batch norm's statistics see different batches per worker — the
well-known sync-BN caveat, which the test below demonstrates too).
"""

import numpy as np
import pytest

from repro.caffe import Minibatch, Net, SGDSolver, SolverConfig
from repro.caffe.netspec import NetSpec
from repro.caffe.params import FlatParams
from repro.nccl import RingGroup

from .test_nccl import run_group


def bn_free_spec(batch, channels=2, size=6, classes=3):
    spec = NetSpec("equiv")
    data = spec.input("data", (batch, channels, size, size))
    labels = spec.input("label", (batch,))
    top = spec.conv_relu("conv1", data, 4, kernel=3, pad=1)
    top = spec.pool("pool1", top, method="max", kernel=2, stride=2)
    logits_in = spec.pool("gp", top, method="ave", global_pool=True)
    logits = spec.fc("fc", logits_in, classes)
    spec.softmax_loss("loss", logits, labels)
    return spec


def bn_spec(batch, channels=2, size=6, classes=3):
    spec = NetSpec("equiv_bn")
    data = spec.input("data", (batch, channels, size, size))
    labels = spec.input("label", (batch,))
    top = spec.conv_bn_relu("conv1", data, 4, kernel=3, pad=1)
    logits_in = spec.pool("gp", top, method="ave", global_pool=True)
    logits = spec.fc("fc", logits_in, classes)
    spec.softmax_loss("loss", logits, labels)
    return spec


def make_shard_batches(num_workers, per_worker, steps, seed=0):
    rng = np.random.default_rng(seed)
    batches = []
    for _ in range(steps):
        step_batches = []
        for _ in range(num_workers):
            images = rng.standard_normal(
                (per_worker, 2, 6, 6)
            ).astype(np.float32)
            labels = rng.integers(0, 3, per_worker)
            step_batches.append(Minibatch(images, labels))
        batches.append(step_batches)
    return batches


def run_ssgd(spec_factory, shard_batches, num_workers, config):
    """NCCL-style SSGD over pre-generated shards; returns final weights."""
    ring = RingGroup(num_workers)
    finals = [None] * num_workers

    def worker(rank):
        net = Net(spec_factory(), seed=11)
        solver = SGDSolver(net, config)
        flat = FlatParams(net)
        for step_batches in shard_batches:
            solver.compute_gradients(step_batches[rank].as_inputs())
            averaged = ring.allreduce(
                rank, flat.get_grad_vector(), average=True
            )
            flat.set_grad_vector(averaged)
            solver.apply_update()
            solver.advance_iteration()
        finals[rank] = flat.get_vector()
        return True

    run_group(num_workers, worker)
    return finals


def run_big_batch(spec_factory, shard_batches, config):
    """Single worker on the concatenation of every step's shards."""
    net = Net(spec_factory(), seed=11)
    solver = SGDSolver(net, config)
    flat = FlatParams(net)
    for step_batches in shard_batches:
        images = np.concatenate([b.images for b in step_batches])
        labels = np.concatenate([b.labels for b in step_batches])
        solver.compute_gradients(
            Minibatch(images, labels).as_inputs()
        )
        solver.apply_update()
        solver.advance_iteration()
    return flat.get_vector()


class TestDataParallelEquivalence:
    @pytest.mark.parametrize("num_workers", [2, 4])
    def test_ssgd_equals_big_batch_without_bn(self, num_workers):
        config = SolverConfig(base_lr=0.1, momentum=0.9)
        shard_batches = make_shard_batches(num_workers, per_worker=4,
                                           steps=5)
        per_worker_batch = 4

        def spec_factory():
            return bn_free_spec(batch=per_worker_batch)

        distributed = run_ssgd(
            spec_factory, shard_batches, num_workers, config
        )
        single = run_big_batch(spec_factory, shard_batches, config)

        for final in distributed:
            np.testing.assert_allclose(final, single, rtol=2e-4, atol=2e-5)

    def test_replicas_stay_bit_identical(self):
        config = SolverConfig(base_lr=0.1, momentum=0.9)
        shard_batches = make_shard_batches(3, per_worker=4, steps=4)
        finals = run_ssgd(
            lambda: bn_free_spec(batch=4), shard_batches, 3, config
        )
        np.testing.assert_array_equal(finals[0], finals[1])
        np.testing.assert_array_equal(finals[0], finals[2])

    def test_batchnorm_breaks_exact_equivalence(self):
        """The sync-BN caveat: per-worker batch statistics differ from
        big-batch statistics, so BN nets diverge between the two modes."""
        config = SolverConfig(base_lr=0.1, momentum=0.9)
        shard_batches = make_shard_batches(2, per_worker=4, steps=5)

        distributed = run_ssgd(
            lambda: bn_spec(batch=4), shard_batches, 2, config
        )
        single = run_big_batch(
            lambda: bn_spec(batch=4), shard_batches, config
        )
        assert not np.allclose(distributed[0], single, rtol=1e-4)
