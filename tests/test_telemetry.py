"""Tests for the telemetry subsystem (registry, phases, trace, report).

Covers the properties the subsystem promises: exact counting under
concurrent writers, bounded-memory quantile accuracy, phase-timer
nesting, Chrome-trace JSON validity, and — the acceptance smoke test —
a 2-worker SEASGD run emitting all five eq.-(8) paper phases per worker
with main/update-thread overlap visible in the trace.
"""

import json
import logging
import threading

import numpy as np
import pytest

from repro import telemetry
from repro.caffe.data import SyntheticImageDataset
from repro.caffe.models import scaled_spec
from repro.core.config import ShmCaffeConfig
from repro.core.trainer import DistributedTrainingManager
from repro.smb.protocol import Op
from repro.smb.server import ServerStats, SMBServer
from repro.telemetry import (
    ALL_PHASES,
    MetricsRegistry,
    NULL_PHASE_TIMER,
    PAPER_PHASES,
    TelemetrySession,
    phase_metric,
)
from repro.telemetry.report import (
    format_report,
    load,
    perfmodel_comparison_rows,
    report_from_session,
)
from repro.telemetry.logconfig import setup_logging


class TestRegistryThreadSafety:
    def test_concurrent_counter_increments_are_exact(self):
        registry = MetricsRegistry()
        threads, per_thread = 8, 5000

        def writer():
            for _ in range(per_thread):
                registry.inc("hits")

        pool = [threading.Thread(target=writer) for _ in range(threads)]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        assert registry.counter("hits").value == threads * per_thread

    def test_concurrent_histogram_observes_are_exact(self):
        registry = MetricsRegistry()
        threads, per_thread = 8, 2000

        def writer(seed):
            rng = np.random.default_rng(seed)
            for value in rng.uniform(0.0001, 1.0, per_thread):
                registry.observe("lat", float(value))

        pool = [
            threading.Thread(target=writer, args=(i,))
            for i in range(threads)
        ]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        hist = registry.histogram("lat")
        assert hist.count == threads * per_thread
        assert 0.0001 <= hist.quantile(0.5) <= 1.0

    def test_concurrent_get_or_create_yields_one_instrument(self):
        registry = MetricsRegistry()
        seen = []
        barrier = threading.Barrier(8)

        def getter():
            barrier.wait()
            seen.append(registry.counter("shared"))

        pool = [threading.Thread(target=getter) for _ in range(8)]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        assert all(c is seen[0] for c in seen)

    def test_type_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.histogram("x")


class TestHistogramQuantiles:
    def test_uniform_quantiles_within_bucket_error(self):
        hist = MetricsRegistry().histogram("h")
        rng = np.random.default_rng(42)
        values = rng.uniform(0.001, 1.0, 50_000)
        for value in values:
            hist.observe(float(value))
        values.sort()
        for q in (0.5, 0.95, 0.99):
            estimate = hist.quantile(q)
            truth = float(values[int(q * len(values)) - 1])
            assert abs(estimate - truth) / truth < 0.06, (q, estimate, truth)

    def test_bounded_memory(self):
        hist = MetricsRegistry().histogram("h")
        for value in np.geomspace(1e-7, 1e2, 100_000):
            hist.observe(float(value))
        # 9 decades at growth 1.1 is ~220 buckets, not 100k samples.
        assert len(hist._buckets) < 300

    def test_empty_and_single(self):
        hist = MetricsRegistry().histogram("h")
        assert hist.quantile(0.5) == 0.0
        hist.observe(0.25)
        snap = hist.snapshot()
        assert snap["count"] == 1
        assert snap["min"] <= snap["p50"] <= snap["max"]

    def test_quantile_never_exceeds_observed_range(self):
        hist = MetricsRegistry().histogram("h")
        for _ in range(100):
            hist.observe(0.01)
        assert hist.quantile(0.99) == pytest.approx(0.01)


class TestPhaseTimer:
    def test_records_histogram_per_phase(self):
        session = TelemetrySession("metrics")
        timer = session.phase_timer(3, "main")
        with timer.phase("comp"):
            pass
        snap = session.registry.snapshot()
        assert phase_metric(3, "comp") in snap
        assert snap[phase_metric(3, "comp")]["count"] == 1

    def test_nesting_records_both_levels_and_nests_trace(self):
        session = TelemetrySession("trace")
        timer = session.phase_timer(0, "main")
        with timer.phase("comp"):
            with timer.phase("rgw"):
                pass
        snap = session.registry.snapshot()
        assert snap[phase_metric(0, "comp")]["count"] == 1
        assert snap[phase_metric(0, "rgw")]["count"] == 1
        events = [
            e for e in session.trace.events() if e.get("ph") == "X"
        ]
        by_name = {e["name"]: e for e in events}
        outer, inner = by_name["comp"], by_name["rgw"]
        assert inner["ts"] >= outer["ts"]
        assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"] + 1e-3

    def test_disabled_session_returns_shared_null_timer(self):
        session = TelemetrySession("off")
        timer = session.phase_timer(0)
        assert timer is NULL_PHASE_TIMER
        with timer.phase("comp"):
            pass
        assert session.registry.snapshot() == {}

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            TelemetrySession("everything")


class TestTraceExport:
    def test_export_is_valid_chrome_trace_json(self, tmp_path):
        session = TelemetrySession("trace")
        timer = session.phase_timer(1, "update")
        for _ in range(5):
            with timer.phase("wwi"):
                pass
        path = tmp_path / "trace.json"
        session.trace.export(str(path))
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
        events = data["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        assert len(complete) == 5
        for event in complete:
            assert {"name", "cat", "pid", "tid", "ts", "dur"} <= set(event)
            assert event["pid"] == 1
        meta = [e for e in events if e["ph"] == "M"]
        names = {(e["name"], e["args"]["name"]) for e in meta}
        assert ("process_name", "worker 1") in names
        assert ("thread_name", "update") in names

    def test_buffer_is_bounded(self):
        session = TelemetrySession("trace", max_trace_events=10)
        timer = session.phase_timer(0)
        for _ in range(50):
            with timer.phase("comp"):
                pass
        assert len(session.trace) == 10
        assert session.trace.dropped == 40


class TestSessionScoping:
    def test_session_context_installs_and_restores(self):
        before = telemetry.current()
        with telemetry.session("metrics") as scoped:
            assert telemetry.current() is scoped
            assert scoped.enabled
        assert telemetry.current() is before

    def test_configure_replaces_current(self):
        from repro.telemetry import runtime

        original = telemetry.current()
        try:
            installed = telemetry.configure("metrics")
            assert telemetry.current() is installed
        finally:
            runtime._current = original  # restore for other tests


class TestServerStatsMigration:
    def test_counters_shape_preserved(self):
        stats = ServerStats()
        stats.record(Op.WRITE, 100)
        stats.record(Op.READ, 40)
        stats.record(Op.READ, 60)
        counters = stats.counters()
        assert counters["bytes_written"] == 100
        assert counters["bytes_read"] == 100
        assert counters["WRITE"] == 1
        assert counters["READ"] == 2

    def test_snapshot_alias_removed(self):
        # "snapshot" now belongs to the durability layer (a durable pool
        # image on disk); the deprecated stats alias is gone for good —
        # callers use counters().
        stats = ServerStats()
        assert not hasattr(stats, "snapshot")

    def test_byte_counters_and_op_counts_are_separate_namespaces(self):
        stats = ServerStats()
        stats.record(Op.READ, 1024)
        # The registry stores op counts under smb/server/ops/, so no
        # opcode can ever shadow the byte counters.
        assert stats.registry.counter("smb/server/ops/READ").value == 1
        assert stats.registry.counter("smb/server/bytes_read").value == 1024
        assert stats.op_counts == {"READ": 1}

    def test_server_folds_stats_into_session_registry(self):
        with telemetry.session("metrics") as tel:
            server = SMBServer(capacity=1 << 20, telemetry=tel)
            from repro.smb.client import SMBClient

            client = SMBClient.in_process(server, tel)
            array = client.create_array("x", 16)
            array.write(np.zeros(16, dtype=np.float32))
            snap = tel.registry.snapshot()
        assert snap["smb/server/ops/WRITE"]["value"] == 1
        assert "smb/server/time/WRITE" in snap
        assert "smb/client/time/WRITE" in snap
        assert snap["smb/server/bytes_written"]["value"] == 64


class TestSeasgdSmoke:
    """Acceptance: a 2-worker run emits all five paper phases + trace."""

    @pytest.fixture(scope="class")
    def run_session(self):
        with telemetry.session("trace") as tel:
            dataset = SyntheticImageDataset(
                num_classes=4, image_size=8, train_per_class=20,
                test_per_class=5, seed=3,
            )
            manager = DistributedTrainingManager(
                spec_factory=lambda: scaled_spec(
                    "inception_v1", batch_size=4, image_size=8,
                    num_classes=4,
                ),
                config=ShmCaffeConfig(max_iterations=5),
                dataset=dataset,
                batch_size=4,
                num_workers=2,
                telemetry=tel,
            )
            result = manager.run()
            yield tel, result

    def test_all_five_phases_per_worker(self, run_session):
        tel, result = run_session
        # MASTER_STOP: the master runs exactly its target; the other
        # worker stops at the flag, however many iterations it managed.
        assert result.histories[0].completed_iterations >= 5
        assert all(h.completed_iterations >= 1 for h in result.histories)
        snap = tel.registry.snapshot()
        for worker in range(2):
            for phase in PAPER_PHASES:
                name = phase_metric(worker, phase)
                assert name in snap, f"missing {name}"
                assert snap[name]["count"] > 0
        # The eq.-(8) stall is timed too.
        assert snap[phase_metric(0, "block")]["count"] > 0

    def test_trace_shows_main_and_update_threads(self, run_session):
        tel, _ = run_session
        events = tel.trace.events()
        lanes = {
            (e["pid"], e["tid"]) for e in events if e.get("ph") == "X"
        }
        for worker in range(2):
            assert (worker, 0) in lanes  # main thread
            assert (worker, 1) in lanes  # update thread
        json.dumps(tel.trace.to_dict())  # serialisable end-to-end

    def test_report_and_perfmodel_cross_validation(self, run_session):
        tel, _ = run_session
        meta = {"model": "inception_v1", "workers": 2,
                "platform": "shmcaffe_a"}
        text = report_from_session(tel, meta)
        assert "phase timings (eq. 8)" in text
        for phase in ALL_PHASES:
            assert phase in text
        assert "measured vs perfmodel" in text
        rows = perfmodel_comparison_rows(
            tel.registry.snapshot(), "inception_v1", 2
        )
        assert [row["phase"] for row in rows] == list(PAPER_PHASES)
        measured = sum(
            row["measured_share"] for row in rows
            if row["measured_share"] is not None
        )
        assert measured == pytest.approx(1.0)

    def test_save_and_reload_roundtrip(self, run_session, tmp_path):
        tel, _ = run_session
        paths = tel.save(
            str(tmp_path), {"model": "inception_v1", "workers": 2}
        )
        payload = load(paths["metrics"])
        assert payload["mode"] == "trace"
        text = format_report(payload)
        assert "measured vs perfmodel" in text
        with open(paths["trace"], "r", encoding="utf-8") as handle:
            trace = json.load(handle)
        assert trace["traceEvents"]


class TestLogConfig:
    def test_accepts_known_levels(self):
        setup_logging("debug")
        assert logging.getLogger().level == logging.DEBUG
        setup_logging("warning")
        assert logging.getLogger().level == logging.WARNING

    def test_rejects_unknown_level(self):
        with pytest.raises(ValueError):
            setup_logging("loud")
