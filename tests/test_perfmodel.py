"""Tests for the per-iteration performance model (eq. 8 and variants)."""

import pytest

from repro.perfmodel import (
    PAPER_HARDWARE,
    PAPER_MODELS,
    HardwareProfile,
    caffe_multi_gpu,
    caffe_mpi,
    caffe_standalone,
    iterations_for_epochs,
    model_profile,
    mpi_caffe,
    platform_breakdown,
    shmcaffe_a,
    shmcaffe_h,
    training_time,
)

INCEPTION = model_profile("inception_v1")
RESNET = model_profile("resnet_50")
INCRESV2 = model_profile("inception_resnet_v2")
VGG = model_profile("vgg16")


class TestHardwareProfile:
    def test_smb_effective_bandwidth_is_fig7_plateau(self):
        assert PAPER_HARDWARE.smb_effective_bandwidth_gbs == pytest.approx(
            6.72
        )

    def test_contention_grows_linearly(self):
        f1 = PAPER_HARDWARE.contention_factor(1)
        f2 = PAPER_HARDWARE.contention_factor(2)
        f3 = PAPER_HARDWARE.contention_factor(3)
        assert f1 == 1.0
        assert f3 - f2 == pytest.approx(f2 - f1)

    def test_straggler_factor_monotone(self):
        factors = [
            PAPER_HARDWARE.straggler_factor(n) for n in (1, 2, 4, 8, 16)
        ]
        assert factors[0] == 1.0
        assert all(b > a for a, b in zip(factors, factors[1:]))

    def test_validation(self):
        with pytest.raises(ValueError):
            PAPER_HARDWARE.contention_factor(0)
        with pytest.raises(ValueError):
            PAPER_HARDWARE.straggler_factor(0)


class TestModelProfiles:
    def test_all_four_models_present(self):
        assert set(PAPER_MODELS) == {
            "inception_v1", "resnet_50", "inception_resnet_v2", "vgg16",
        }

    def test_param_bytes(self):
        assert INCEPTION.param_bytes == int(53.5e6)

    def test_unknown_model(self):
        with pytest.raises(ValueError):
            model_profile("lenet")

    def test_iterations_for_epochs(self):
        # 15 epochs / (60 images x 16 workers) over 1,281,167 images.
        iters = iterations_for_epochs(15, 16, 60)
        assert iters == pytest.approx(20018, abs=2)

    def test_iterations_validation(self):
        with pytest.raises(ValueError):
            iterations_for_epochs(0, 1)


class TestEq8Structure:
    def test_single_worker_has_no_communication(self):
        for profile in PAPER_MODELS.values():
            assert shmcaffe_a(profile, 1).comm_ms == 0.0

    def test_comm_monotone_in_workers(self):
        times = [shmcaffe_a(INCEPTION, n).comm_ms for n in (2, 4, 8, 16)]
        assert all(b > a for a, b in zip(times, times[1:]))

    def test_no_spill_for_small_fast_hidden_model(self):
        # Inception-v1: write+accumulate is far below one compute slot.
        breakdown = shmcaffe_a(INCEPTION, 8)
        assert breakdown.components["spill"] == 0.0

    def test_spill_appears_when_flush_outlives_compute(self):
        # VGG16: 553 MB write + accumulate >> 195 ms compute, even at 2.
        breakdown = shmcaffe_a(VGG, 2)
        assert breakdown.components["spill"] > 0.0

    def test_update_interval_amortises_read(self):
        every = shmcaffe_a(INCEPTION, 8, update_interval=1)
        sparse = shmcaffe_a(INCEPTION, 8, update_interval=4)
        assert sparse.comm_ms < every.comm_ms

    def test_update_interval_gives_spill_more_room(self):
        spill_1 = shmcaffe_a(VGG, 2, update_interval=1).components["spill"]
        spill_4 = shmcaffe_a(VGG, 2, update_interval=4).components["spill"]
        assert spill_4 < spill_1

    def test_iteration_is_comp_plus_comm(self):
        breakdown = shmcaffe_a(RESNET, 8)
        assert breakdown.iteration_ms == pytest.approx(
            breakdown.compute_ms + breakdown.comm_ms
        )


class TestHybridModel:
    def test_group_of_one_equals_async(self):
        a = shmcaffe_a(INCEPTION, 8)
        h = shmcaffe_h(INCEPTION, 8, 1)
        assert h.comm_ms == pytest.approx(a.comm_ms)

    def test_single_group_never_touches_smb(self):
        breakdown = shmcaffe_h(INCEPTION, 4, 4)
        assert "t_rgw" not in breakdown.components
        assert breakdown.components["allreduce"] > 0

    def test_hybrid_beats_async_for_large_models_at_scale(self):
        for profile in (INCRESV2, VGG):
            a = shmcaffe_a(profile, 16)
            h = shmcaffe_h(profile, 16, 4)
            assert h.comm_ms < a.comm_ms

    def test_group_size_must_divide(self):
        with pytest.raises(ValueError):
            shmcaffe_h(INCEPTION, 8, 3)

    def test_hybrid_cuts_smb_contention_by_group_count(self):
        # 4 groups of 4 contend like 4 async workers, not 16.
        hybrid = shmcaffe_h(INCEPTION, 16, 4)
        four_async = shmcaffe_a(INCEPTION, 4)
        assert hybrid.components["t_rgw"] == pytest.approx(
            four_async.components["t_rgw"]
        )


class TestBaselines:
    def test_standalone_matches_paper_iteration_time(self):
        # Caffe 1-GPU: 22:59 for 15 epochs -> ~258 ms per iteration.
        breakdown = caffe_standalone(INCEPTION)
        assert breakdown.iteration_ms == pytest.approx(258.3, abs=1.0)

    def test_caffe_multi_gpu_superlinear_comm(self):
        c8 = caffe_multi_gpu(INCEPTION, 8).components["transfer"]
        c16 = caffe_multi_gpu(INCEPTION, 16).components["transfer"]
        assert c16 > 2 * c8  # super-linear in device count

    def test_caffe_mpi_linear_in_workers(self):
        c8 = caffe_mpi(INCEPTION, 8).components["transfer"]
        c16 = caffe_mpi(INCEPTION, 16).components["transfer"]
        assert c16 == pytest.approx(2 * c8)

    def test_mpi_caffe_uses_pcie_within_node(self):
        within = mpi_caffe(INCEPTION, 4).components["transfer"]
        across = mpi_caffe(INCEPTION, 8).components["transfer"]
        assert across > within

    def test_sync_platforms_pay_straggler_async_does_not(self):
        sync = caffe_mpi(INCEPTION, 8)
        async_ = shmcaffe_a(INCEPTION, 8)
        assert sync.components["straggler"] > 0
        assert "straggler" not in async_.components

    def test_single_worker_baselines_degenerate_to_standalone(self):
        reference = caffe_standalone(INCEPTION).iteration_ms
        assert caffe_multi_gpu(INCEPTION, 1).iteration_ms == reference
        assert caffe_mpi(INCEPTION, 1).iteration_ms == reference
        assert mpi_caffe(INCEPTION, 1).iteration_ms == reference


class TestDispatch:
    def test_platform_breakdown_names(self):
        for name in ("caffe", "caffe_mpi", "mpi_caffe", "shmcaffe",
                     "shmcaffe_a", "shmcaffe_h"):
            breakdown = platform_breakdown(name, INCEPTION, 8)
            assert breakdown.iteration_ms > 0

    def test_unknown_platform(self):
        with pytest.raises(ValueError):
            platform_breakdown("tensorflow", INCEPTION, 8)

    def test_training_time_formats_hours_minutes(self):
        cell = training_time("caffe", INCEPTION, 1)
        assert cell.hours_minutes == "22:59"

    def test_custom_hardware_profile_respected(self):
        fast = HardwareProfile(ib_bandwidth_gbs=70.0)
        slow = shmcaffe_a(INCEPTION, 8)
        quick = shmcaffe_a(INCEPTION, 8, hw=fast)
        assert quick.comm_ms < slow.comm_ms
