"""Tests for the mini-MPI substrate: p2p, collectives, launcher."""

import numpy as np
import pytest

from repro import mpi
from repro.mpi.errors import MPIAbortError, MPIError, MPITimeoutError


class TestPointToPoint:
    def test_send_recv(self):
        def main(comm):
            if comm.rank == 0:
                comm.send("ping", dest=1, tag=5)
                return comm.recv(source=1, tag=6)
            payload = comm.recv(source=0, tag=5)
            comm.send(payload + "/pong", dest=0, tag=6)
            return payload

        results = mpi.run_spmd(2, main)
        assert results == ["ping/pong", "ping"]

    def test_fifo_per_source_and_tag(self):
        def main(comm):
            if comm.rank == 0:
                for index in range(5):
                    comm.send(index, dest=1, tag=1)
                return None
            return [comm.recv(source=0, tag=1) for _ in range(5)]

        results = mpi.run_spmd(2, main)
        assert results[1] == [0, 1, 2, 3, 4]

    def test_tag_matching_skips_other_tags(self):
        def main(comm):
            if comm.rank == 0:
                comm.send("a", dest=1, tag=1)
                comm.send("b", dest=1, tag=2)
                return None
            first = comm.recv(source=0, tag=2)
            second = comm.recv(source=0, tag=1)
            return (first, second)

        results = mpi.run_spmd(2, main)
        assert results[1] == ("b", "a")

    def test_any_source(self):
        def main(comm):
            if comm.rank == 0:
                got = {comm.recv(source=mpi.ANY_SOURCE) for _ in range(2)}
                return got
            comm.send(comm.rank, dest=0)
            return None

        results = mpi.run_spmd(3, main)
        assert results[0] == {1, 2}

    def test_recv_timeout(self):
        def main(comm):
            if comm.rank == 0:
                with pytest.raises(MPITimeoutError):
                    comm.recv(source=1, tag=9, timeout=0.2)
            return None

        mpi.run_spmd(2, main)

    def test_negative_user_tag_rejected(self):
        def main(comm):
            if comm.rank == 0:
                with pytest.raises(ValueError):
                    comm.send("x", dest=1, tag=-1)
            return None

        mpi.run_spmd(2, main)


class TestCollectives:
    def test_bcast(self):
        def main(comm):
            value = {"key": 42} if comm.is_master else None
            return mpi.bcast(comm, value)

        results = mpi.run_spmd(4, main)
        assert all(r == {"key": 42} for r in results)

    def test_gather_preserves_rank_order(self):
        def main(comm):
            return mpi.gather(comm, comm.rank * 10)

        results = mpi.run_spmd(4, main)
        assert results[0] == [0, 10, 20, 30]
        assert results[1] is None

    def test_allgather(self):
        def main(comm):
            return mpi.allgather(comm, chr(ord("a") + comm.rank))

        results = mpi.run_spmd(3, main)
        assert all(r == ["a", "b", "c"] for r in results)

    def test_scatter(self):
        def main(comm):
            values = [10, 11, 12] if comm.is_master else None
            return mpi.scatter(comm, values)

        assert mpi.run_spmd(3, main) == [10, 11, 12]

    def test_scatter_wrong_length(self):
        def main(comm):
            if comm.is_master:
                with pytest.raises(ValueError):
                    mpi.scatter(comm, [1, 2])
                comm.abort("cleanup")  # unblock the waiting slaves
            else:
                with pytest.raises(MPIAbortError):
                    mpi.scatter(comm, None)
            return True

        assert mpi.run_spmd(3, main) == [True, True, True]

    def test_allreduce_sum(self):
        def main(comm):
            return mpi.allreduce(comm, np.full(4, comm.rank, dtype=np.float32))

        results = mpi.run_spmd(4, main)
        for result in results:
            np.testing.assert_allclose(result, 6.0)

    @pytest.mark.parametrize("op,expected", [
        ("max", 3), ("min", 0), ("prod", 0),
    ])
    def test_allreduce_ops(self, op, expected):
        def main(comm):
            return mpi.allreduce(comm, np.asarray([comm.rank]), op=op)

        results = mpi.run_spmd(4, main)
        for result in results:
            np.testing.assert_allclose(result, expected)

    def test_reduce_unknown_op(self):
        def main(comm):
            with pytest.raises(ValueError):
                mpi.reduce(comm, 1, op="median")
            return True

        assert mpi.run_spmd(1, main) == [True]

    def test_alltoall(self):
        def main(comm):
            values = [f"{comm.rank}->{dest}" for dest in range(comm.size)]
            return mpi.alltoall(comm, values)

        results = mpi.run_spmd(3, main)
        assert results[1] == ["0->1", "1->1", "2->1"]

    def test_barrier_orders_phases(self):
        import threading

        counter = {"before": 0}
        lock = threading.Lock()

        def main(comm):
            with lock:
                counter["before"] += 1
            mpi.barrier(comm)
            # After the barrier every rank must observe all arrivals.
            return counter["before"]

        results = mpi.run_spmd(4, main)
        assert all(r == 4 for r in results)

    def test_collectives_compose_in_order(self):
        def main(comm):
            first = mpi.allreduce(comm, np.asarray([1.0]))
            second = mpi.bcast(comm, "x" if comm.is_master else None)
            third = mpi.gather(comm, comm.rank)
            return float(first[0]), second, third

        results = mpi.run_spmd(3, main)
        assert results[0] == (3.0, "x", [0, 1, 2])


class TestLauncher:
    def test_exception_propagates_and_unblocks_peers(self):
        def main(comm):
            if comm.rank == 1:
                raise RuntimeError("boom")
            # Rank 0 would otherwise wait forever.
            comm.recv(source=1, tag=7)

        with pytest.raises(RuntimeError, match="boom"):
            mpi.run_spmd(2, main)

    def test_timeout_aborts(self):
        def main(comm):
            if comm.rank == 0:
                comm.recv(source=1, tag=3)  # never sent

        with pytest.raises(MPIError):
            mpi.run_spmd(2, main, timeout=1.0)

    def test_results_in_rank_order(self):
        assert mpi.run_spmd(5, lambda comm: comm.rank ** 2) == [
            0, 1, 4, 9, 16,
        ]

    def test_extra_args_forwarded(self):
        def main(comm, base, scale):
            return base + comm.rank * scale

        assert mpi.run_spmd(3, main, 100, 10) == [100, 110, 120]

    def test_world_size_validation(self):
        with pytest.raises(ValueError):
            mpi.World(0)

    def test_rank_bounds(self):
        world = mpi.World(2)
        with pytest.raises(mpi.RankError):
            mpi.Communicator(world, 2)
