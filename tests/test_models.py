"""Tests for the four CNN model builders (Table IV cross-checks)."""

import numpy as np
import pytest

from repro.caffe import Net, SGDSolver, SolverConfig, models
from repro.caffe.netspec import infer

#: Paper-derived parameter sizes in MB (decimal), from perfmodel's Table IV.
PAPER_SIZES_MB = {
    "inception_v1": 53.5,
    "resnet_50": 102.3,
    "inception_resnet_v2": 214.0,
    "vgg16": 553.4,
}

#: Published parameter counts (millions) for the reference architectures.
REFERENCE_PARAM_COUNTS_M = {
    "inception_v1": 13.4,       # BVLC GoogLeNet incl. both aux heads
    "resnet_50": 25.6,
    "inception_resnet_v2": 55.8,
    "vgg16": 138.4,
}


class TestFullSpecs:
    @pytest.mark.parametrize("name", sorted(PAPER_SIZES_MB))
    def test_param_size_near_paper(self, name):
        image = 320 if name == "inception_resnet_v2" else 224
        spec = models.full_spec(name, batch_size=1, image_size=image)
        built_mb = infer(spec).param_nbytes / 1e6
        assert built_mb == pytest.approx(PAPER_SIZES_MB[name], rel=0.12)

    @pytest.mark.parametrize("name", sorted(REFERENCE_PARAM_COUNTS_M))
    def test_param_count_near_reference(self, name):
        image = 320 if name == "inception_resnet_v2" else 224
        spec = models.full_spec(name, batch_size=1, image_size=image)
        millions = infer(spec).param_count / 1e6
        assert millions == pytest.approx(
            REFERENCE_PARAM_COUNTS_M[name], rel=0.12
        )

    def test_resnet_is_about_twice_inception(self):
        # Paper Sec. IV-E: ResNet-50 "has about twice as many parameters
        # as Inception_v1".
        inception = infer(models.full_spec("inception_v1", batch_size=1))
        resnet = infer(models.full_spec("resnet_50", batch_size=1))
        ratio = resnet.param_count / inception.param_count
        assert 1.6 < ratio < 2.4

    def test_vgg16_exact_param_count(self):
        # VGG16 configuration D has exactly 138,357,544 parameters.
        spec = models.full_spec("vgg16", batch_size=1)
        assert infer(spec).param_count == 138_357_544

    def test_inception_aux_heads_optional(self):
        with_aux = infer(models.full_spec("inception_v1", batch_size=1))
        without = infer(
            models.full_spec("inception_v1", batch_size=1, aux_heads=False)
        )
        assert with_aux.param_count > without.param_count
        # The two aux heads contribute ~6.4M parameters.
        delta_m = (with_aux.param_count - without.param_count) / 1e6
        assert 5.0 < delta_m < 8.0

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError):
            models.full_spec("alexnet")

    def test_incresv2_trains_at_320(self):
        # The paper trains Inception-ResNet-v2 at 320x320; the stem's
        # valid convolutions must produce legal shapes there.
        spec = models.full_spec(
            "inception_resnet_v2", batch_size=1, image_size=320
        )
        result = infer(spec)
        assert result.blob_shapes["logits"] == (1, 1000)


class TestScaledSpecs:
    @pytest.mark.parametrize("name", sorted(PAPER_SIZES_MB))
    def test_instantiable_and_runnable(self, name):
        spec = models.scaled_spec(name, batch_size=4, image_size=16)
        net = Net(spec, seed=0)
        rng = np.random.default_rng(0)
        outputs = net.forward(
            {
                "data": rng.standard_normal((4, 3, 16, 16)).astype(
                    np.float32
                ),
                "label": rng.integers(0, 10, 4),
            },
            train=True,
        )
        assert np.isfinite(outputs["loss"][0])
        net.backward()

    @pytest.mark.parametrize("name", sorted(PAPER_SIZES_MB))
    def test_one_solver_step_moves_weights(self, name):
        spec = models.scaled_spec(name, batch_size=4, image_size=16)
        net = Net(spec, seed=0)
        solver = SGDSolver(net, SolverConfig(base_lr=0.01))
        rng = np.random.default_rng(0)
        inputs = {
            "data": rng.standard_normal((4, 3, 16, 16)).astype(np.float32),
            "label": rng.integers(0, 10, 4),
        }
        before = [p.data.copy() for p in net.params]
        solver.step(inputs)
        moved = any(
            not np.array_equal(b, p.data)
            for b, p in zip(before, net.params)
        )
        assert moved

    def test_scaled_much_smaller_than_full(self):
        for name in PAPER_SIZES_MB:
            scaled = infer(models.scaled_spec(name, batch_size=1))
            assert scaled.param_count < 200_000
