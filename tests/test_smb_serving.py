"""Parameter-serving read tier: replicas, pinned reads, cache, gateway.

Covers the serving data path end to end plus the wait/version contract
fixes it leans on:

* ``wait_update`` timeout semantics — ``None`` waits forever, ``0.0``
  polls (one immediate version check, never parking a server thread);
* :class:`VersionRegressionError` — a recovery that rolls a segment
  below a client's last-seen version surfaces a typed error instead of
  parking its subscription loop forever;
* the client read cache — inserts keyed strictly by the wire-returned
  version, hammered by concurrent writers;
* :class:`ReplicaServer` — mirroring, the snapshot ring, resync across
  primary recovery (ring retained);
* :class:`ModelGateway` — HTTP routes, ETag/304, placement fan-out, and
  the acceptance demo: 16 concurrent HTTP readers of a 16 MiB ``W_g``
  with **zero** primary READ ops after warm-up.
"""

import json
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.smb import (
    NotificationTimeout,
    ReadCache,
    ReplicaServer,
    RetryPolicy,
    SMBClient,
    SMBServer,
    TcpSMBServer,
    UnknownKeyError,
    VersionNotAvailableError,
    VersionRegressionError,
)
from repro.smb.journal import RENDEZVOUS_NAME
from repro.serve import ModelGateway

RECOVERY_RETRY = RetryPolicy(
    max_attempts=8, base_backoff=0.02, max_backoff=0.2, seed=7
)


def _wait_for(predicate, timeout=5.0, interval=0.005):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


def _http_get(url, headers=None):
    request = urllib.request.Request(url, headers=headers or {})
    try:
        with urllib.request.urlopen(request, timeout=10.0) as response:
            return response.status, dict(response.headers), response.read()
    except urllib.error.HTTPError as exc:
        return exc.code, dict(exc.headers), exc.read()


# ---------------------------------------------------------------------------
# Satellite 1: the wait_update timeout contract
# ---------------------------------------------------------------------------


class TestWaitTimeoutContract:
    @pytest.mark.parametrize("transport_kind", ["inproc", "tcp"])
    def test_zero_timeout_polls_promptly(self, transport_kind):
        """``timeout=0.0`` is a poll: it returns (with a timeout error)
        immediately instead of parking a waiter forever."""
        if transport_kind == "tcp":
            server = TcpSMBServer(capacity=1 << 20).start()
            client = SMBClient.connect(server.address)
        else:
            server = None
            client = SMBClient.in_process(SMBServer(capacity=1 << 20))
        try:
            array = client.create_array("seg", 16)
            begin = time.monotonic()
            with pytest.raises(NotificationTimeout):
                array.wait_update(version=array.version(), timeout=0.0)
            assert time.monotonic() - begin < 1.0
        finally:
            client.close()
            if server is not None:
                server.stop()

    def test_zero_timeout_poll_sees_an_existing_update(self):
        client = SMBClient.in_process(SMBServer(capacity=1 << 20))
        with client:
            array = client.create_array("seg", 16)
            array.write(np.ones(16, dtype=np.float32))
            assert array.wait_update(version=0, timeout=0.0) >= 1

    def test_poll_does_not_park_a_loop_thread_waiter(self):
        """Regression: a 0.0 poll against a TCP server must answer from
        the event loop inline — never park a ``_PendingWait`` that only a
        future write would release."""
        server = TcpSMBServer(capacity=1 << 20).start()
        client = SMBClient.connect(server.address)
        try:
            array = client.create_array("seg", 16)
            outcome = {}

            def poller():
                begin = time.monotonic()
                try:
                    array.wait_update(version=array.version(), timeout=0.0)
                    outcome["result"] = "returned"
                except NotificationTimeout:
                    outcome["result"] = "timeout"
                outcome["elapsed"] = time.monotonic() - begin

            thread = threading.Thread(target=poller, daemon=True)
            thread.start()
            thread.join(timeout=5.0)
            assert not thread.is_alive(), "0.0 poll parked a waiter"
            assert outcome["result"] == "timeout"
            assert outcome["elapsed"] < 1.0
        finally:
            client.close()
            server.stop()

    def test_none_waits_until_update(self):
        client = SMBClient.in_process(SMBServer(capacity=1 << 20))
        with client:
            array = client.create_array("seg", 16)
            seen = {}

            def waiter():
                seen["version"] = array.wait_update(version=0, timeout=None)

            thread = threading.Thread(target=waiter, daemon=True)
            thread.start()
            time.sleep(0.05)
            array.write(np.ones(16, dtype=np.float32))
            thread.join(timeout=5.0)
            assert not thread.is_alive()
            assert seen["version"] >= 1

    def test_bounded_timeout_still_times_out(self):
        client = SMBClient.in_process(SMBServer(capacity=1 << 20))
        with client:
            array = client.create_array("seg", 16)
            with pytest.raises(NotificationTimeout):
                array.wait_update(version=array.version(), timeout=0.05)


# ---------------------------------------------------------------------------
# Satellite 2: version regression surfaces as a typed error
# ---------------------------------------------------------------------------


class TestVersionRegression:
    def _snapshot_only_restart(self, tmp_path, writes=3):
        """Primary at version ``writes``; snapshot taken at version 1;
        killed; recovered snapshot-only (so the segment regresses)."""
        first = TcpSMBServer(
            port=0, capacity=1 << 20, journal_dir=tmp_path,
            journal_ops=False,
        ).start()
        rendezvous = str(tmp_path / RENDEZVOUS_NAME)
        client = SMBClient.connect(
            first.address, retry_policy=RECOVERY_RETRY,
            rendezvous=rendezvous, server_down_grace=20.0,
        )
        array = client.create_array("weights", 8)
        array.write(np.full(8, 1.0, dtype=np.float32))
        client.request_snapshot()  # durable at version 1
        for i in range(2, writes + 1):
            array.write(np.full(8, float(i), dtype=np.float32))
        assert array.version() == writes
        first.kill()
        second = TcpSMBServer(
            port=0, capacity=1 << 20, journal_dir=tmp_path,
            journal_ops=False,
        ).start()
        return client, array, second

    def test_wait_past_recovered_version_raises(self, tmp_path):
        client, array, server = self._snapshot_only_restart(tmp_path)
        try:
            with pytest.raises(VersionRegressionError) as excinfo:
                array.wait_update(version=3, timeout=5.0)
            assert excinfo.value.last_seen == 3
            assert excinfo.value.current == 1
            assert excinfo.value.epoch == 1
        finally:
            client.close()
            server.stop()

    def test_resync_clears_the_flag(self, tmp_path):
        """Waiting from a version the recovered segment covers proves
        the caller resynced; subsequent waits work normally."""
        client, array, server = self._snapshot_only_restart(tmp_path)
        try:
            with pytest.raises(VersionRegressionError):
                array.wait_update(version=3, timeout=5.0)
            recovered = array.version()
            assert recovered == 1
            np.testing.assert_array_equal(
                array.read(), np.full(8, 1.0, dtype=np.float32)
            )
            # Waiting from the recovered version is a normal wait again.
            with pytest.raises(NotificationTimeout):
                array.wait_update(version=recovered, timeout=0.0)
            array.write(np.full(8, 9.0, dtype=np.float32))
            assert array.wait_update(version=recovered, timeout=5.0) == 2
        finally:
            client.close()
            server.stop()

    def test_full_journal_recovery_does_not_regress(self, tmp_path):
        """With per-op journaling the version continues; no typed error."""
        first = TcpSMBServer(
            port=0, capacity=1 << 20, journal_dir=tmp_path
        ).start()
        rendezvous = str(tmp_path / RENDEZVOUS_NAME)
        client = SMBClient.connect(
            first.address, retry_policy=RECOVERY_RETRY,
            rendezvous=rendezvous, server_down_grace=20.0,
        )
        array = client.create_array("weights", 8)
        array.write(np.full(8, 1.0, dtype=np.float32))
        first.kill()
        second = TcpSMBServer(
            port=0, capacity=1 << 20, journal_dir=tmp_path
        ).start()
        try:
            array.write(np.full(8, 2.0, dtype=np.float32))
            assert array.version() == 2
        finally:
            client.close()
            second.stop()

    def test_error_round_trips_the_wire(self):
        from repro.smb.errors import from_wire, to_wire

        exc = VersionRegressionError(
            shm_key=0xBEEF, last_seen=9, current=4, epoch=2
        )
        rebuilt = from_wire(to_wire(exc))
        assert isinstance(rebuilt, VersionRegressionError)
        assert rebuilt.last_seen == 9
        assert rebuilt.current == 4
        assert rebuilt.epoch == 2


# ---------------------------------------------------------------------------
# ReadCache + satellite 3: insert strictly by wire version
# ---------------------------------------------------------------------------


class TestReadCache:
    def test_lru_eviction_by_bytes(self):
        cache = ReadCache(capacity_bytes=100)
        cache.put((1, 1, 40), b"a" * 40)
        cache.put((1, 2, 40), b"b" * 40)
        cache.put((1, 3, 40), b"c" * 40)  # evicts (1, 1, 40)
        assert cache.get((1, 1, 40)) is None
        assert cache.get((1, 2, 40)) == b"b" * 40
        assert cache.used_bytes == 80

    def test_get_refreshes_recency(self):
        cache = ReadCache(capacity_bytes=100)
        cache.put((1, 1, 40), b"a" * 40)
        cache.put((1, 2, 40), b"b" * 40)
        assert cache.get((1, 1, 40)) is not None  # now most recent
        cache.put((1, 3, 40), b"c" * 40)  # evicts (1, 2, 40)
        assert cache.get((1, 2, 40)) is None
        assert cache.get((1, 1, 40)) == b"a" * 40

    def test_oversized_entry_not_cached(self):
        cache = ReadCache(capacity_bytes=10)
        cache.put((1, 1, 40), b"a" * 40)
        assert len(cache) == 0

    def test_invalidate_by_segment(self):
        cache = ReadCache(capacity_bytes=1000)
        cache.put((1, 1, 4), b"aaaa")
        cache.put((2, 1, 4), b"bbbb")
        cache.invalidate(shm_key=1)
        assert cache.get((1, 1, 4)) is None
        assert cache.get((2, 1, 4)) == b"bbbb"
        cache.invalidate()
        assert len(cache) == 0

    def test_client_cached_read_skips_the_server(self):
        server = SMBServer(capacity=1 << 20)
        client = SMBClient.in_process(server, cache=1 << 20)
        with client:
            array = client.create_array("seg", 8)
            array.write(np.arange(8, dtype=np.float32))
            first = client.read(array.access_key, 32)
            reads = server.stats.op_counts.get("READ", 0)
            second = client.read(array.access_key, 32)
            assert second == first
            assert server.stats.op_counts.get("READ", 0) == reads

    def test_notify_advance_invalidates_cached_read(self):
        """The notify channel is the invalidation path: once wait_update
        reports a new version, the next read misses and refetches."""
        server = SMBServer(capacity=1 << 20)
        writer = SMBClient.in_process(server)
        reader = SMBClient.in_process(server, cache=1 << 20)
        try:
            array = writer.create_array("seg", 8)
            array.write(np.full(8, 1.0, dtype=np.float32))
            access = reader.attach(array.shm_key, 32)
            stale = reader.read(access, 32)
            array.write(np.full(8, 2.0, dtype=np.float32))
            reader.wait_update(access, 1, timeout=5.0)
            fresh = reader.read(access, 32)
            assert np.frombuffer(stale, dtype=np.float32)[0] == 1.0
            assert np.frombuffer(fresh, dtype=np.float32)[0] == 2.0
        finally:
            writer.close()
            reader.close()

    def test_hammer_inserts_are_keyed_by_wire_version(self):
        """Satellite 3: two threads hammer read() while a writer mutates.
        Every cache entry must hold the exact bytes of the version it is
        keyed under — an insert keyed by 'latest seen' instead of the
        wire-returned version would alias stale bytes to new versions."""
        server = SMBServer(capacity=1 << 20)
        cache = ReadCache(capacity_bytes=1 << 22)
        writer = SMBClient.in_process(server)
        readers = [
            SMBClient.in_process(server, cache=cache) for _ in range(2)
        ]
        stop = threading.Event()
        try:
            array = writer.create_array("seg", 64)
            accesses = [r.attach(array.shm_key, 256) for r in readers]

            def write_loop():
                for i in range(1, 300):
                    array.write(np.full(64, float(i), dtype=np.float32))

            def read_loop(reader, access):
                while not stop.is_set():
                    reader.read(access, 256)
                    # Advance the attachment's view so later inserts use
                    # newer versions (poll; never parks).
                    try:
                        reader.wait_update(access, 0, timeout=0.0)
                    except NotificationTimeout:
                        pass

            writer_thread = threading.Thread(target=write_loop)
            reader_threads = [
                threading.Thread(target=read_loop, args=(r, a), daemon=True)
                for r, a in zip(readers, accesses)
            ]
            for thread in reader_threads:
                thread.start()
            writer_thread.start()
            writer_thread.join(timeout=30.0)
            stop.set()
            for thread in reader_threads:
                thread.join(timeout=5.0)
            # Every cached (shm_key, version, nbytes) must hold that
            # version's canonical bytes: write v filled the array with v.
            checked = 0
            for (shm_key, version, nbytes), data in list(
                cache._entries.items()
            ):
                values = np.frombuffer(data, dtype=np.float32)
                assert values.shape == (64,)
                assert np.all(values == float(version)), (
                    f"cache poisoned: version {version} holds bytes of "
                    f"write {values[0]:.0f}"
                )
                checked += 1
            assert checked > 0, "hammer never populated the cache"
        finally:
            stop.set()
            writer.close()
            for reader in readers:
                reader.close()


# ---------------------------------------------------------------------------
# ReplicaServer: mirroring, the ring, pinned reads
# ---------------------------------------------------------------------------


class TestReplicaServer:
    def _primary(self, count=256):
        server = SMBServer(capacity=1 << 22)
        master = SMBClient.in_process(server)
        array = master.create_array("W_g", count)
        array.write(np.full(count, 1.0, dtype=np.float32))
        return server, master, array

    def test_mirrors_and_tracks_updates(self):
        server, master, array = self._primary()
        replica = ReplicaServer(
            lambda: SMBClient.in_process(server), ["W_g"]
        ).start()
        try:
            assert replica.wait_ready(5.0)
            version, data = replica.read("W_g")
            assert version == 1
            assert np.frombuffer(data, dtype=np.float32)[0] == 1.0
            array.write(np.full(256, 2.0, dtype=np.float32))
            assert _wait_for(lambda: replica.version("W_g") >= 2)
            version, data = replica.read("W_g")
            assert version == 2
            assert np.frombuffer(data, dtype=np.float32)[0] == 2.0
        finally:
            replica.stop()
            master.close()

    def test_pinned_read_serves_from_ring(self):
        server, master, array = self._primary()
        replica = ReplicaServer(
            lambda: SMBClient.in_process(server), ["W_g"], ring_depth=4
        ).start()
        try:
            assert replica.wait_ready(5.0)
            for i in range(2, 5):
                array.write(np.full(256, float(i), dtype=np.float32))
                assert _wait_for(
                    lambda i=i: replica.version("W_g") >= i
                )
            # Version 2 is gone from the primary (now at 4) but retained.
            version, data = replica.read("W_g", version=2)
            assert version == 2
            assert np.frombuffer(data, dtype=np.float32)[0] == 2.0
        finally:
            replica.stop()
            master.close()

    def test_aged_out_version_raises(self):
        server, master, array = self._primary()
        replica = ReplicaServer(
            lambda: SMBClient.in_process(server), ["W_g"], ring_depth=2
        ).start()
        try:
            assert replica.wait_ready(5.0)
            for i in range(2, 7):
                array.write(np.full(256, float(i), dtype=np.float32))
                assert _wait_for(
                    lambda i=i: replica.version("W_g") >= i
                )
            with pytest.raises(VersionNotAvailableError):
                replica.read("W_g", version=1)
        finally:
            replica.stop()
            master.close()

    def test_unknown_segment_rejected(self):
        server, master, _ = self._primary()
        replica = ReplicaServer(
            lambda: SMBClient.in_process(server), ["W_g"]
        ).start()
        try:
            assert replica.wait_ready(5.0)
            with pytest.raises(UnknownKeyError):
                replica.read("nope")
            assert not replica.serves("nope")
            assert replica.serves("W_g")
            assert not replica.serves("W_g", tenant="other")
        finally:
            replica.stop()
            master.close()

    def test_tenant_scoped_mirroring(self):
        server = SMBServer(capacity=1 << 22)
        server.pool.create_tenant("alice")
        master = SMBClient.in_process(server, tenant="alice")
        array = master.create_array("W_g", 64)
        array.write(np.full(64, 7.0, dtype=np.float32))
        replica = ReplicaServer(
            lambda: SMBClient.in_process(server, tenant="alice"),
            ["W_g"], tenant="alice",
        ).start()
        try:
            assert replica.wait_ready(5.0)
            version, data = replica.read("W_g", tenant="alice")
            assert version == 1
            assert np.frombuffer(data, dtype=np.float32)[0] == 7.0
        finally:
            replica.stop()
            master.close()


# ---------------------------------------------------------------------------
# Satellite 4: primary loss mid-subscription
# ---------------------------------------------------------------------------


@pytest.mark.chaos
class TestReplicaChaos:
    def test_replica_resyncs_across_journaled_recovery(self, tmp_path):
        """Kill the primary mid-subscription; the journaled replacement
        recovers on a new port; the replica reconnects (rendezvous),
        resumes mirroring, and pre-kill pinned versions still serve."""
        first = TcpSMBServer(
            port=0, capacity=1 << 20, journal_dir=tmp_path
        ).start()
        rendezvous = str(tmp_path / RENDEZVOUS_NAME)
        master = SMBClient.connect(
            first.address, retry_policy=RECOVERY_RETRY,
            rendezvous=rendezvous, server_down_grace=20.0,
        )
        array = master.create_array("W_g", 64)
        array.write(np.full(64, 1.0, dtype=np.float32))

        def connect():
            return SMBClient.connect(
                first.address, retry_policy=RECOVERY_RETRY,
                rendezvous=rendezvous, server_down_grace=20.0,
            )

        replica = ReplicaServer(connect, ["W_g"], ring_depth=8).start()
        second = None
        try:
            assert replica.wait_ready(10.0)
            array.write(np.full(64, 2.0, dtype=np.float32))
            assert _wait_for(lambda: replica.version("W_g") >= 2)
            first.kill()
            second = TcpSMBServer(
                port=0, capacity=1 << 20, journal_dir=tmp_path
            ).start()
            # Full journal: the recovered epoch continues at version 2;
            # a new write reaches the replica through the re-attach.
            array.write(np.full(64, 3.0, dtype=np.float32))
            assert _wait_for(
                lambda: replica.version("W_g") >= 3, timeout=20.0
            )
            version, data = replica.read("W_g")
            assert version == 3
            assert np.frombuffer(data, dtype=np.float32)[0] == 3.0
            # Pinned pre-kill versions still serve from the ring.
            version, data = replica.read("W_g", version=1)
            assert np.frombuffer(data, dtype=np.float32)[0] == 1.0
        finally:
            replica.stop()
            master.close()
            if second is not None:
                second.stop()

    def test_replica_resyncs_after_snapshot_only_regression(self, tmp_path):
        """Snapshot-only recovery rolls the primary back; the replica's
        wait surfaces VersionRegressionError and it force-resyncs to the
        recovered epoch — keeping its ring, so pinned reads of pre-kill
        versions still serve."""
        first = TcpSMBServer(
            port=0, capacity=1 << 20, journal_dir=tmp_path,
            journal_ops=False,
        ).start()
        rendezvous = str(tmp_path / RENDEZVOUS_NAME)
        master = SMBClient.connect(
            first.address, retry_policy=RECOVERY_RETRY,
            rendezvous=rendezvous, server_down_grace=20.0,
        )
        array = master.create_array("W_g", 64)
        array.write(np.full(64, 1.0, dtype=np.float32))
        master.request_snapshot()  # durable at version 1
        array.write(np.full(64, 2.0, dtype=np.float32))
        array.write(np.full(64, 3.0, dtype=np.float32))

        def connect():
            return SMBClient.connect(
                first.address, retry_policy=RECOVERY_RETRY,
                rendezvous=rendezvous, server_down_grace=20.0,
            )

        replica = ReplicaServer(connect, ["W_g"], ring_depth=8).start()
        second = None
        try:
            assert replica.wait_ready(10.0)
            assert replica.version("W_g") == 3
            first.kill()
            second = TcpSMBServer(
                port=0, capacity=1 << 20, journal_dir=tmp_path,
                journal_ops=False,
            ).start()
            # Recovered at version 1 (< last seen 3): the subscription
            # must resync down instead of parking forever.
            assert _wait_for(
                lambda: replica.version("W_g") == 1, timeout=20.0
            ), "replica never resynced to the regressed primary"
            info = replica.lag_info()["W_g"]
            assert info["resyncs"] >= 1
            version, data = replica.read("W_g")
            assert version == 1
            assert np.frombuffer(data, dtype=np.float32)[0] == 1.0
            # The ring kept the pre-kill snapshots.
            version, data = replica.read("W_g", version=3)
            assert np.frombuffer(data, dtype=np.float32)[0] == 3.0
            # And mirroring continues against the recovered epoch.
            array.write(np.full(64, 9.0, dtype=np.float32))
            assert _wait_for(
                lambda: replica.version("W_g") >= 2
                and np.frombuffer(
                    replica.read("W_g")[1], dtype=np.float32
                )[0] == 9.0,
                timeout=20.0,
            )
        finally:
            replica.stop()
            master.close()
            if second is not None:
                second.stop()


# ---------------------------------------------------------------------------
# The HTTP gateway
# ---------------------------------------------------------------------------


class TestModelGateway:
    def _stack(self, count=256):
        server = SMBServer(capacity=1 << 22)
        master = SMBClient.in_process(server)
        array = master.create_array("W_g", count)
        array.write(np.full(count, 1.0, dtype=np.float32))
        replica = ReplicaServer(
            lambda: SMBClient.in_process(server), ["W_g"], name="r0"
        ).start()
        assert replica.wait_ready(5.0)
        gateway = ModelGateway([replica]).start()
        return server, master, array, replica, gateway

    def test_get_current_with_etag(self):
        server, master, array, replica, gateway = self._stack()
        try:
            status, headers, body = _http_get(
                gateway.url + "/v1/models/default/W_g"
            )
            assert status == 200
            assert headers["Content-Type"] == "application/octet-stream"
            assert headers["ETag"] == '"v1"'
            assert headers["X-SMB-Version"] == "1"
            assert np.frombuffer(body, dtype=np.float32)[0] == 1.0
        finally:
            gateway.stop()
            replica.stop()
            master.close()

    def test_if_none_match_returns_304(self):
        server, master, array, replica, gateway = self._stack()
        try:
            status, headers, _ = _http_get(
                gateway.url + "/v1/models/default/W_g"
            )
            status, _, body = _http_get(
                gateway.url + "/v1/models/default/W_g",
                headers={"If-None-Match": headers["ETag"]},
            )
            assert status == 304
            assert body == b""
            # A new version invalidates the conditional request.
            array.write(np.full(256, 2.0, dtype=np.float32))
            assert _wait_for(lambda: replica.version("W_g") >= 2)
            status, headers2, body = _http_get(
                gateway.url + "/v1/models/default/W_g",
                headers={"If-None-Match": headers["ETag"]},
            )
            assert status == 200
            assert headers2["ETag"] == '"v2"'
        finally:
            gateway.stop()
            replica.stop()
            master.close()

    def test_pinned_version_and_errors(self):
        server, master, array, replica, gateway = self._stack()
        try:
            array.write(np.full(256, 2.0, dtype=np.float32))
            assert _wait_for(lambda: replica.version("W_g") >= 2)
            status, headers, body = _http_get(
                gateway.url + "/v1/models/default/W_g?version=1"
            )
            assert status == 200
            assert headers["X-SMB-Version"] == "1"
            assert np.frombuffer(body, dtype=np.float32)[0] == 1.0
            status, _, body = _http_get(
                gateway.url + "/v1/models/default/W_g?version=999"
            )
            assert status == 404
            assert json.loads(body)["error"] == "version not available"
            status, _, _ = _http_get(
                gateway.url + "/v1/models/default/nope"
            )
            assert status == 404
            status, _, _ = _http_get(
                gateway.url + "/v1/models/default/W_g?version=banana"
            )
            assert status == 400
            status, _, _ = _http_get(gateway.url + "/bogus")
            assert status == 404
        finally:
            gateway.stop()
            replica.stop()
            master.close()

    def test_healthz_reports_fleet(self):
        server, master, array, replica, gateway = self._stack()
        try:
            status, _, body = _http_get(gateway.url + "/healthz")
            assert status == 200
            doc = json.loads(body)
            assert doc["status"] == "ok"
            assert doc["replicas"]["r0"]["W_g"]["ready"] is True
        finally:
            gateway.stop()
            replica.stop()
            master.close()

    def test_placement_spreads_and_fails_over(self):
        """Two replicas: placement picks one deterministically, and a
        stopped replica's segments still serve through the other."""
        server = SMBServer(capacity=1 << 22)
        master = SMBClient.in_process(server)
        array = master.create_array("W_g", 64)
        array.write(np.full(64, 5.0, dtype=np.float32))
        replicas = [
            ReplicaServer(
                lambda: SMBClient.in_process(server), ["W_g"],
                name=f"r{i}",
            ).start()
            for i in range(2)
        ]
        for replica in replicas:
            assert replica.wait_ready(5.0)
        gateway = ModelGateway(replicas).start()
        try:
            version, data = gateway.read("default", "W_g")
            assert version == 1
            # Kill the placement pick; the read must fail over.
            picked = gateway._placement.server_for("default/W_g")
            {r.name: r for r in replicas}[picked].stop()
            version, data = gateway.read("default", "W_g")
            assert version == 1
            assert np.frombuffer(data, dtype=np.float32)[0] == 5.0
        finally:
            gateway.stop()
            for replica in replicas:
                replica.stop()
            master.close()


# ---------------------------------------------------------------------------
# Acceptance: the read-fanout demo
# ---------------------------------------------------------------------------


class TestReadFanoutAcceptance:
    def test_fanout_never_touches_the_primary_after_warmup(self):
        """1 primary + 2 replicas + gateway; 16 concurrent HTTP readers
        of a 16 MiB W_g; zero primary READ ops during the fan-out."""
        size = 16 << 20
        count = size // 4
        primary = TcpSMBServer(capacity=size + (1 << 22)).start()
        master = SMBClient.connect(primary.address)
        array = master.create_array("W_g", count)
        array.write(np.full(count, 1.0, dtype=np.float32))

        def connect():
            return SMBClient.connect(primary.address)

        replicas = [
            ReplicaServer(
                connect, ["W_g"], name=f"r{i}", capacity=size + (1 << 22)
            ).start()
            for i in range(2)
        ]
        gateway = None
        try:
            for replica in replicas:
                assert replica.wait_ready(30.0)
            gateway = ModelGateway(replicas).start()
            # Warm-up is over: the replicas each took their initial READ.
            reads_after_warmup = primary.core.stats.op_counts.get("READ", 0)
            assert reads_after_warmup >= 2

            errors = []
            url = gateway.url + "/v1/models/default/W_g"

            def reader():
                try:
                    status, headers, body = _http_get(url)
                    assert status == 200
                    assert len(body) == size
                    assert headers["X-SMB-Version"] == "1"
                except Exception as exc:  # noqa: BLE001 - collected
                    errors.append(exc)

            threads = [
                threading.Thread(target=reader, daemon=True)
                for _ in range(16)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60.0)
            assert not errors, errors[0]
            # The whole fan-out was served by the read tier: not one
            # primary READ beyond the warm-up mirrors.
            assert (
                primary.core.stats.op_counts.get("READ", 0)
                == reads_after_warmup
            )
        finally:
            if gateway is not None:
                gateway.stop()
            for replica in replicas:
                replica.stop()
            master.close()
            primary.stop()

    def test_replica_lag_is_bounded_on_loopback(self):
        """A primary write reaches the replica well under a second."""
        primary = TcpSMBServer(capacity=1 << 22).start()
        master = SMBClient.connect(primary.address)
        array = master.create_array("W_g", 1024)
        array.write(np.full(1024, 1.0, dtype=np.float32))
        replica = ReplicaServer(
            lambda: SMBClient.connect(primary.address), ["W_g"]
        ).start()
        try:
            assert replica.wait_ready(10.0)
            begin = time.monotonic()
            array.write(np.full(1024, 2.0, dtype=np.float32))
            assert _wait_for(
                lambda: replica.version("W_g") >= 2, timeout=5.0
            )
            lag = time.monotonic() - begin
            assert lag < 1.0, f"replica lag {lag:.3f}s exceeds 1s bound"
        finally:
            replica.stop()
            master.close()
            primary.stop()
