"""Multi-tenant SMB: namespaces, quotas, handshake, and fair dispatch.

The tenancy refactor threads a namespace through every layer — pool
admission (per-tenant byte quotas), the wire handshake (``SMB2`` hello
carrying a tenant name), name-based ops (scoped CREATE/LOOKUP/LIST/FREE)
and the journal (tenant metadata survives a crash).  These tests pin the
layer contracts:

* name-based ops are namespace-scoped, SHM/access keys stay unscoped
  capabilities (like RDMA rkeys: whoever holds one may use it);
* quota admission denies with a typed, field-carrying
  :class:`QuotaExceededError` that survives the TCP hop — and a denial
  never perturbs a neighbour tenant's bytes (bit-exact check);
* all three transports (in-process, TCP, local shm) negotiate a tenant,
  and a legacy ``SMB1`` client still lands in ``default``;
* small control ops answered inline on the event loop survive malformed
  frames (one bad connection never kills the server);
* tenants and quotas come back after a crash, from snapshot or journal.
"""

import json
import socket
import struct

import numpy as np
import pytest

from repro.smb import (
    DEFAULT_TENANT,
    QuotaExceededError,
    SMBClient,
    SMBServer,
    ShmSMBServer,
    TcpSMBServer,
)
from repro.smb.errors import SegmentExistsError, SMBProtocolError
from repro.smb.memory import MemoryPool
from repro.smb.protocol import (
    HEADER_FORMAT,
    HEADER_SIZE,
    HELLO,
    HELLO_TENANT,
    MAX_TENANT_NAME,
    TENANT_LEN_STRUCT,
    Message,
    Op,
    Status,
    encode_hello,
)


# -- pool-level namespace scoping -------------------------------------------

class TestNamespaceScoping:
    def test_same_name_different_tenants_are_distinct_segments(self):
        pool = MemoryPool(capacity=1 << 16)
        a = pool.create("w", 64, tenant="alice")
        b = pool.create("w", 64, tenant="bob")
        assert a.shm_key != b.shm_key
        assert pool.by_name("w", tenant="alice").shm_key == a.shm_key
        assert pool.by_name("w", tenant="bob").shm_key == b.shm_key

    def test_list_is_scoped_to_the_tenant(self):
        pool = MemoryPool(capacity=1 << 16)
        pool.create("w", 64, tenant="alice")
        pool.create("v", 64, tenant="alice")
        pool.create("w", 64, tenant="bob")
        assert sorted(pool.segments(tenant="alice")) == [
            "alice/v", "alice/w"
        ]
        assert list(pool.segments(tenant="bob")) == ["bob/w"]

    def test_default_tenant_keeps_bare_names(self):
        # Pre-tenancy journals store bare names; the default namespace
        # must stay bit-compatible with them.
        pool = MemoryPool(capacity=1 << 16)
        segment = pool.create("w", 64)
        assert segment.name == "w"
        qualified = pool.create("w", 64, tenant="alice")
        assert qualified.name == "alice/w"

    def test_slash_is_forbidden_in_named_tenant_bare_names(self):
        pool = MemoryPool(capacity=1 << 16)
        with pytest.raises(ValueError):
            pool.create("a/b", 64, tenant="alice")

    def test_default_tenant_keeps_legacy_slash_names(self):
        # The pre-tenancy elastic-job convention namespaces segments
        # client-side ("job1/W_g"); those deployments run in the default
        # tenant and must keep working unchanged.
        pool = MemoryPool(capacity=1 << 16)
        segment = pool.create("job1/W_g", 64)
        assert segment.tenant == DEFAULT_TENANT
        assert pool.by_name("job1/W_g").name == "job1/W_g"
        assert "job1/W_g" in pool.segments(tenant=DEFAULT_TENANT)

    def test_legacy_name_colliding_with_tenant_namespace_is_loud(self):
        pool = MemoryPool(capacity=1 << 16)
        pool.create("w", 64, tenant="job1")
        with pytest.raises(SegmentExistsError):
            pool.create("job1/w", 64)  # same directory entry

    def test_shm_keys_are_unscoped_capabilities(self):
        # Like an RDMA rkey: possession is authorisation.  Tenancy scopes
        # the *name directory*, not the keys themselves.
        pool = MemoryPool(capacity=1 << 16)
        segment = pool.create("w", 64, tenant="alice")
        access = pool.attach(segment.shm_key, 64)
        assert pool.by_access_key(access).name == "alice/w"


# -- quotas ------------------------------------------------------------------

class TestQuotas:
    def test_quota_denial_carries_fields_over_tcp(self):
        server = TcpSMBServer(capacity=1 << 22).start()
        try:
            admin = SMBClient.connect(server.address)
            admin.create_tenant("alice", quota=256)
            alice = SMBClient.connect(server.address, tenant="alice")
            alice.create_buffer("small", 128)
            with pytest.raises(QuotaExceededError) as info:
                alice.create_buffer("big", 256)
            err = info.value
            assert err.tenant == "alice"
            assert err.requested == 256
            assert err.quota == 256
            assert err.used == 128
            alice.close()
            admin.close()
        finally:
            server.stop()

    def test_denial_never_perturbs_neighbour_bytes(self):
        """Seeded neighbour traffic is bit-exact across a quota denial."""
        rng = np.random.default_rng(1234)
        deltas = [
            rng.standard_normal(128).astype(np.float32) for _ in range(6)
        ]
        server = TcpSMBServer(capacity=1 << 22).start()
        try:
            admin = SMBClient.connect(server.address)
            admin.create_tenant("noisy", quota=1 << 20)
            admin.create_tenant("victim", quota=512)
            noisy = SMBClient.connect(server.address, tenant="noisy")
            victim = SMBClient.connect(server.address, tenant="victim")
            acc = noisy.create_array("acc", 128)
            acc.write(np.zeros(128, dtype=np.float32))
            expected = np.zeros(128, dtype=np.float32)
            for index, delta in enumerate(deltas):
                staged = noisy.create_array(f"d{index}", 128)
                staged.write(delta)
                staged.accumulate_into(acc)
                expected += delta  # same order, same float32 adds
                if index == 2:  # mid-stream denial on the other tenant
                    with pytest.raises(QuotaExceededError):
                        victim.create_buffer("too-big", 1024)
                staged.free()
            np.testing.assert_array_equal(acc.read(), expected)
            noisy.close()
            victim.close()
            admin.close()
        finally:
            server.stop()

    def test_freeing_returns_quota_headroom(self):
        pool = MemoryPool(capacity=1 << 16)
        pool.create_tenant("alice", quota=128)
        segment = pool.create("w", 128, tenant="alice")
        with pytest.raises(QuotaExceededError):
            pool.create("v", 64, tenant="alice")
        pool.free(segment.shm_key)
        pool.create("v", 64, tenant="alice")  # fits again

    def test_create_tenant_is_an_idempotent_upsert(self):
        pool = MemoryPool(capacity=1 << 16)
        pool.create_tenant("alice", quota=64)
        with pytest.raises(QuotaExceededError):
            pool.create("w", 128, tenant="alice")
        pool.create_tenant("alice", quota=1024)  # admin raises the grant
        pool.create("w", 128, tenant="alice")
        assert pool.tenants()["alice"].quota == 1024

    def test_tenant_stats_rollup(self):
        server = TcpSMBServer(capacity=1 << 22).start()
        try:
            admin = SMBClient.connect(server.address)
            admin.create_tenant("alice", quota=4096)
            alice = SMBClient.connect(server.address, tenant="alice")
            alice.create_buffer("w", 1024)
            with pytest.raises(QuotaExceededError):
                alice.create_buffer("big", 4096)
            stats = admin.tenant_stats()
            entry = stats["alice"]
            assert entry["quota"] == 4096
            assert entry["used"] == 1024
            assert entry["segments"] == 1
            assert entry["counters"]["quota_denials"] >= 1
            alice.close()
            admin.close()
        finally:
            server.stop()


# -- the tenant handshake on every transport --------------------------------

class TestHandshake:
    def test_in_process_transport_scopes_by_tenant(self):
        server = SMBServer(capacity=1 << 20)
        alice = SMBClient.in_process(server, tenant="alice")
        bob = SMBClient.in_process(server, tenant="bob")
        a = alice.create_array("w", 16)
        b = bob.create_array("w", 16)
        assert a.shm_key != b.shm_key
        assert [s["name"] for s in alice.list_segments()["segments"]] == ["w"]

    def test_tcp_transport_negotiates_tenant(self):
        server = TcpSMBServer(capacity=1 << 20).start()
        try:
            alice = SMBClient.connect(server.address, tenant="alice")
            legacy = SMBClient.connect(server.address)  # SMB1 → default
            a = alice.create_array("w", 16)
            d = legacy.create_array("w", 16)
            assert a.shm_key != d.shm_key
            assert alice.lookup("w")[0] == a.shm_key
            assert legacy.lookup("w")[0] == d.shm_key
            alice.close()
            legacy.close()
        finally:
            server.stop()

    def test_shm_transport_negotiates_tenant(self, tmp_path):
        path = tmp_path / "smb.sock"
        server = ShmSMBServer(path=path, capacity=1 << 20).start()
        try:
            alice = SMBClient.connect_local(path, tenant="alice")
            bob = SMBClient.connect_local(path, tenant="bob")
            a = alice.create_array("w", 16)
            a.write(np.arange(16, dtype=np.float32))
            b = bob.create_array("w", 16)
            assert a.shm_key != b.shm_key
            np.testing.assert_array_equal(
                a.read(), np.arange(16, dtype=np.float32)
            )
            alice.close()
            bob.close()
        finally:
            server.stop()

    def test_hello_frame_round_trip(self):
        frame = encode_hello("alice")
        assert frame[:len(HELLO_TENANT)] == HELLO_TENANT
        (length,) = TENANT_LEN_STRUCT.unpack(
            frame[len(HELLO_TENANT):len(HELLO_TENANT) + 2]
        )
        assert frame[len(HELLO_TENANT) + 2:].decode() == "alice"
        assert length == len("alice")
        assert encode_hello(DEFAULT_TENANT) == HELLO  # legacy frame

    def test_oversized_tenant_name_rejected(self):
        with pytest.raises(SMBProtocolError):
            encode_hello("x" * (MAX_TENANT_NAME + 1))


# -- event-loop inline dispatch (satellite: crash-guard coverage) ------------

def _raw_connect(address, hello=HELLO):
    sock = socket.create_connection(address, timeout=10.0)
    sock.sendall(hello)
    return sock


def _raw_recv_exact(sock, n):
    data = bytearray()
    while len(data) < n:
        chunk = sock.recv(n - len(data))
        if not chunk:
            raise ConnectionError("server closed the connection")
        data.extend(chunk)
    return bytes(data)


def _raw_call(sock, message):
    sock.sendall(message.encode())
    header = _raw_recv_exact(sock, HEADER_SIZE)
    paylen = struct.unpack(HEADER_FORMAT, header)[-1]
    payload = _raw_recv_exact(sock, paylen) if paylen else b""
    return Message.decode(header, payload)


class TestInlineDispatch:
    """LOOKUP/LIST/STATS run inline on the loop thread; a malformed
    frame must cost one connection, never the loop."""

    def test_control_ops_answered_inline(self):
        server = TcpSMBServer(capacity=1 << 20).start()
        try:
            client = SMBClient.connect(server.address, tenant="alice")
            array = client.create_array("w", 16)
            assert client.lookup("w") == (array.shm_key, 64)
            listing = client.list_segments()
            assert [s["name"] for s in listing["segments"]] == ["w"]
            assert client.stats()["LOOKUP"] >= 1
            assert "alice" in client.tenant_stats()
            client.close()
        finally:
            server.stop()

    def test_malformed_name_kills_connection_not_server(self):
        server = TcpSMBServer(capacity=1 << 20).start()
        try:
            healthy = SMBClient.connect(server.address)
            bad = _raw_connect(server.address)
            # A LOOKUP whose name payload is not UTF-8 crashes the
            # handler; the crash guard must contain it to this socket.
            bad.sendall(Message(op=Op.LOOKUP, payload=b"\xff\xfe\xfd").encode())
            with pytest.raises(ConnectionError):
                _raw_recv_exact(bad, HEADER_SIZE)
            bad.close()
            # The event loop is still serving everyone else.
            healthy.create_buffer("alive", 64)
            assert healthy.lookup("alive")[1] == 64
            healthy.close()
        finally:
            server.stop()

    def test_invalid_tenant_create_is_a_protocol_error(self):
        server = TcpSMBServer(capacity=1 << 20).start()
        try:
            sock = _raw_connect(server.address)
            response = _raw_call(
                sock, Message(op=Op.TENANT_CREATE, payload=b"a/b")
            )
            assert response.status is Status.ERROR
            sock.close()
        finally:
            server.stop()

    def test_bad_hello_magic_is_rejected(self):
        server = TcpSMBServer(capacity=1 << 20).start()
        try:
            def assert_rejected(first_bytes):
                sock = socket.create_connection(
                    server.address, timeout=10.0
                )
                sock.sendall(first_bytes)
                # Closed on us: EOF, or RST if our bytes were unread.
                try:
                    assert sock.recv(1) == b""
                except ConnectionError:
                    pass
                sock.close()

            assert_rejected(b"HTTP/1.1 GET /")
            # A zero-length SMB2 tenant record is also rejected.
            assert_rejected(HELLO_TENANT + TENANT_LEN_STRUCT.pack(0))
            healthy = SMBClient.connect(server.address)
            healthy.create_buffer("alive", 8)
            healthy.close()
        finally:
            server.stop()


# -- durability: tenants survive a crash -------------------------------------

class TestTenantRecovery:
    def _crash(self, server):
        """Die without close(): no final snapshot, like SIGKILL."""
        if server._store is not None:
            server._store.close()

    def test_tenants_and_quotas_survive_journal_replay(self, tmp_path):
        first = SMBServer(capacity=1 << 20, journal_dir=tmp_path)
        with SMBClient.in_process(first) as admin:
            admin.create_tenant("alice", quota=512)
            admin.create_tenant("bob")  # unlimited grant
        with SMBClient.in_process(first, tenant="alice") as alice:
            array = alice.create_array("w", 64)
            array.write(np.arange(64, dtype=np.float32))
        self._crash(first)

        second = SMBServer(capacity=1 << 20, journal_dir=tmp_path)
        grants = second.pool.tenants()
        assert grants["alice"].quota == 512
        assert grants["bob"].quota is None
        # Usage is re-derived from the restored segments, so the quota
        # keeps biting after recovery.
        assert grants["alice"].used == 256
        with SMBClient.in_process(second, tenant="alice") as alice:
            np.testing.assert_array_equal(
                alice.attach_array(
                    "w", alice.lookup("w")[0], 64
                ).read(),
                np.arange(64, dtype=np.float32),
            )
            with pytest.raises(QuotaExceededError):
                alice.create_buffer("big", 512)

    def test_tenants_survive_snapshot_then_journal_tail(self, tmp_path):
        first = SMBServer(capacity=1 << 20, journal_dir=tmp_path)
        with SMBClient.in_process(first) as admin:
            admin.create_tenant("alice", quota=1024)
            admin.request_snapshot()  # tenant rides in the snapshot meta
            admin.create_tenant("bob", quota=256)  # ... and this one in
        self._crash(first)  # the journal tail after it

        second = SMBServer(capacity=1 << 20, journal_dir=tmp_path)
        grants = second.pool.tenants()
        assert grants["alice"].quota == 1024
        assert grants["bob"].quota == 256

    def test_legacy_slash_names_recover_into_default_namespace(self, tmp_path):
        # The elastic-job convention prefixes default-tenant segment
        # names client-side ("job1/W_g").  Replay must not misread the
        # prefix as a tenant — even when a tenant of that very name
        # exists — because CREATE records carry the tenant-prefix length
        # out of band instead of parsing the qualified name.
        first = SMBServer(capacity=1 << 20, journal_dir=tmp_path)
        # Auto-vivified namespace (no explicit create_tenant) whose name
        # collides with the legacy prefix; created *first* so a
        # parse-based replay would have every chance to misattribute.
        with SMBClient.in_process(first, tenant="job1") as job1:
            job1.create_buffer("dW", 32)
        with SMBClient.in_process(first) as legacy:
            legacy.create_buffer("job1/W_g", 64)
        self._crash(first)

        second = SMBServer(capacity=1 << 20, journal_dir=tmp_path)
        by_name = second.pool.segments()
        assert by_name["job1/W_g"].tenant == DEFAULT_TENANT
        grants = second.pool.tenants()
        assert grants[DEFAULT_TENANT].used == 64
        assert grants["job1"].used == 32

    def test_pre_tenancy_journal_still_recovers(self, tmp_path):
        # A journal written with no TENANT_CREATE records (PR-7 format)
        # must recover into the default namespace unchanged.
        first = SMBServer(capacity=1 << 20, journal_dir=tmp_path)
        with SMBClient.in_process(first) as client:
            key = client.create_buffer("w", 64)
        self._crash(first)
        second = SMBServer(capacity=1 << 20, journal_dir=tmp_path)
        assert second.pool.by_name("w").shm_key == key
        assert list(second.pool.tenants()) == [DEFAULT_TENANT]


# -- fairness ----------------------------------------------------------------

class TestFairness:
    def test_small_tenant_p95_stays_within_3x_under_bulk_load(self):
        """The ISSUE acceptance bound, at bench-quick scale.

        One retry absorbs scheduler noise on saturated CI runners; the
        committed-baseline CI gate is the tight (2x) enforcement.
        """
        from repro.smb import bench

        worst = None
        for _ in range(2):
            result = bench._measure_tenancy(
                bench.TENANCY_BULK_SIZE_QUICK, iterations=150
            )
            worst = result.fairness_ratio
            if worst < 3.0:
                break
        assert worst < 3.0, (
            f"contended p95 {result.contended_p95_s * 1e3:.3f} ms is "
            f"{worst:.2f}x the uncontended "
            f"{result.uncontended_p95_s * 1e3:.3f} ms"
        )

    def test_tenant_counters_split_by_namespace(self):
        server = TcpSMBServer(capacity=1 << 20).start()
        try:
            alice = SMBClient.connect(server.address, tenant="alice")
            bob = SMBClient.connect(server.address, tenant="bob")
            alice.create_buffer("w", 256)
            bob.create_buffer("w", 128)
            stats = json.loads(
                alice._call(Message(op=Op.TENANT_STATS)).payload.decode()
            )
            assert stats["alice"]["counters"]["ops"] >= 1
            assert stats["alice"]["segments"] == 1
            assert stats["bob"]["counters"]["ops"] >= 1
            assert stats["bob"]["used"] == 128
            alice.close()
            bob.close()
        finally:
            server.stop()
