"""Tests for the data substrate: datasets, LMDB-like store, prefetch."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.caffe.data import (
    LmdbStore,
    Prefetcher,
    SyntheticImageDataset,
    decode_datum,
    encode_datum,
)


@pytest.fixture()
def dataset():
    return SyntheticImageDataset(
        num_classes=4, image_size=8, train_per_class=25, test_per_class=5,
        noise=0.5, seed=3,
    )


class TestSyntheticDataset:
    def test_sizes(self, dataset):
        assert dataset.train_size == 100
        assert dataset.test_size == 20

    def test_deterministic_per_seed(self):
        a = SyntheticImageDataset(seed=9, train_per_class=10)
        b = SyntheticImageDataset(seed=9, train_per_class=10)
        np.testing.assert_array_equal(a.train_images, b.train_images)
        np.testing.assert_array_equal(a.train_labels, b.train_labels)

    def test_different_seed_different_data(self):
        a = SyntheticImageDataset(seed=1, train_per_class=10)
        b = SyntheticImageDataset(seed=2, train_per_class=10)
        assert not np.array_equal(a.train_images, b.train_images)

    def test_all_classes_present(self, dataset):
        assert set(dataset.train_labels) == {0, 1, 2, 3}
        assert set(dataset.test_labels) == {0, 1, 2, 3}

    def test_train_test_disjoint(self, dataset):
        # No training image should reappear in the test split.
        train = {img.tobytes() for img in dataset.train_images}
        test = {img.tobytes() for img in dataset.test_images}
        assert not train & test

    def test_shards_are_disjoint_and_cover(self, dataset):
        seen = []
        for rank in range(4):
            images, _ = dataset.shard(rank, 4)
            seen.extend(img.tobytes() for img in images)
        assert len(seen) == dataset.train_size
        assert len(set(seen)) == dataset.train_size

    def test_every_shard_sees_every_class(self, dataset):
        # Round-robin sharding: the paper assigns data "to all workers
        # without duplication"; each shard must remain class-complete.
        for rank in range(4):
            _, labels = dataset.shard(rank, 4)
            assert set(labels) == {0, 1, 2, 3}

    def test_shard_rank_bounds(self, dataset):
        with pytest.raises(ValueError):
            dataset.shard(4, 4)

    def test_minibatches_shape_and_labels(self, dataset):
        stream = dataset.minibatches(10, seed=0)
        batch = next(stream)
        assert batch.images.shape == (10, 3, 8, 8)
        assert batch.labels.shape == (10,)
        assert batch.size == 10

    def test_minibatches_endless(self, dataset):
        stream = dataset.minibatches(10, seed=0)
        for _ in range(30):  # 3x the dataset
            next(stream)

    def test_minibatch_too_large_rejected(self, dataset):
        with pytest.raises(ValueError):
            next(dataset.minibatches(1000, seed=0))

    def test_minibatches_deterministic(self, dataset):
        a = next(dataset.minibatches(10, seed=5))
        b = next(dataset.minibatches(10, seed=5))
        np.testing.assert_array_equal(a.images, b.images)

    @pytest.mark.parametrize("skip", [3, 10, 17, 25])
    def test_minibatches_skip_fast_forwards(self, dataset, skip):
        """skip=N resumes the exact batch sequence at position N — the
        dataset-cursor contract a resumed training leg relies on — even
        when the cursor crosses epoch (re-shuffle) boundaries."""
        full = dataset.minibatches(10, seed=5)
        reference = [next(full) for _ in range(skip + 3)][skip:]
        resumed = dataset.minibatches(10, seed=5, skip=skip)
        for expected in reference:
            batch = next(resumed)
            np.testing.assert_array_equal(batch.images, expected.images)
            np.testing.assert_array_equal(batch.labels, expected.labels)

    def test_minibatches_skip_respects_sharding(self, dataset):
        full = dataset.minibatches(5, seed=2, rank=1, num_shards=2)
        reference = [next(full) for _ in range(6)]
        resumed = dataset.minibatches(5, seed=2, rank=1, num_shards=2, skip=4)
        np.testing.assert_array_equal(
            next(resumed).images, reference[4].images
        )

    def test_minibatches_negative_skip_rejected(self, dataset):
        with pytest.raises(ValueError, match="skip"):
            next(dataset.minibatches(10, seed=0, skip=-1))

    def test_test_batches_cover_split(self, dataset):
        batches = dataset.test_batches(8)
        assert sum(b.size for b in batches) == dataset.test_size
        assert batches[-1].size == 4  # remainder batch

    def test_as_inputs_mapping(self, dataset):
        batch = next(dataset.minibatches(5, seed=0))
        inputs = batch.as_inputs()
        assert set(inputs) == {"data", "label"}

    def test_invalid_class_count(self):
        with pytest.raises(ValueError):
            SyntheticImageDataset(num_classes=1)


class TestDatum:
    def test_roundtrip(self):
        image = np.random.default_rng(0).standard_normal(
            (3, 5, 5)
        ).astype(np.float32)
        blob = encode_datum(image, 7)
        decoded, label = decode_datum(blob)
        np.testing.assert_array_equal(decoded, image)
        assert label == 7

    def test_rejects_non_chw(self):
        with pytest.raises(ValueError):
            encode_datum(np.zeros((5, 5), dtype=np.float32), 0)

    @settings(max_examples=25, deadline=None)
    @given(
        c=st.integers(1, 4),
        h=st.integers(1, 8),
        w=st.integers(1, 8),
        label=st.integers(-(2 ** 31), 2 ** 31 - 1),
        seed=st.integers(0, 999),
    )
    def test_roundtrip_property(self, c, h, w, label, seed):
        image = np.random.default_rng(seed).standard_normal(
            (c, h, w)
        ).astype(np.float32)
        decoded, out_label = decode_datum(encode_datum(image, label))
        np.testing.assert_array_equal(decoded, image)
        assert out_label == label


class TestLmdbStore:
    def test_put_get(self):
        store = LmdbStore()
        store.put(b"k", b"v")
        assert store.get(b"k") == b"v"
        assert len(store) == 1

    def test_get_missing(self):
        with pytest.raises(KeyError):
            LmdbStore().get(b"nope")

    def test_cursor_sorted(self):
        store = LmdbStore()
        store.put(b"00000002", b"b")
        store.put(b"00000001", b"a")
        store.put(b"00000003", b"c")
        assert [k for k, _ in store.cursor()] == [
            b"00000001", b"00000002", b"00000003",
        ]

    def test_from_dataset_roundtrip(self, dataset):
        store = LmdbStore.from_dataset(dataset, split="train")
        assert len(store) == dataset.train_size
        image, label = decode_datum(store.get(b"00000000"))
        np.testing.assert_array_equal(image, dataset.train_images[0])
        assert label == dataset.train_labels[0]

    def test_from_dataset_bad_split(self, dataset):
        with pytest.raises(ValueError):
            LmdbStore.from_dataset(dataset, split="valid")

    def test_stream_batches(self, dataset):
        store = LmdbStore.from_dataset(dataset, split="test")
        batches = list(store.stream_batches(6))
        assert sum(b.size for b in batches) == dataset.test_size
        assert batches[0].images.shape[1:] == (3, 8, 8)


class TestPrefetcher:
    def test_delivers_in_order(self, dataset):
        store = LmdbStore.from_dataset(dataset, split="test")
        with Prefetcher(store.stream_batches(5), depth=3) as prefetcher:
            first = prefetcher.next_batch()
            np.testing.assert_array_equal(
                first.labels,
                next(store.stream_batches(5)).labels,
            )

    def test_exhaustion_yields_none(self, dataset):
        store = LmdbStore.from_dataset(dataset, split="test")
        with Prefetcher(store.stream_batches(20), depth=2) as prefetcher:
            seen = 0
            while prefetcher.next_batch() is not None:
                seen += 1
            assert seen == 1  # 20 test images in one batch

    def test_default_depth_is_ten(self, dataset):
        # ShmCaffe prefetches 10 minibatch sets ahead.
        prefetcher = Prefetcher(dataset.minibatches(5, seed=0))
        try:
            assert prefetcher._queue.maxsize == 10
        finally:
            prefetcher.stop()

    def test_stop_terminates_endless_stream(self, dataset):
        prefetcher = Prefetcher(dataset.minibatches(5, seed=0), depth=2)
        prefetcher.next_batch()
        prefetcher.stop()  # must not hang
        assert not prefetcher._thread.is_alive()

    def test_invalid_depth(self, dataset):
        with pytest.raises(ValueError):
            Prefetcher(dataset.minibatches(5, seed=0), depth=0)
