"""Tests for elastic membership: registry, elastic control block, autoscale.

Covers the registry service (`repro.smb.membership`), the dynamic slot
allocation the control block grew for it, the atomic-publication
discipline both rely on (`repro.smb.journal.publish_json`), the
autoscale decision logic, and the seeded join/retire/reclaim drill.
"""

import threading
from time import monotonic, sleep

import numpy as np
import pytest

from repro.core import (
    AutoscaleController,
    AutoscalePolicy,
    AutoscaleSupervisor,
)
from repro.core.autoscale import GROW, HOLD, SHRINK
from repro.experiments.elastic import run_elastic_drill
from repro.smb import (
    ControlBlock,
    MembershipError,
    MembershipRegistry,
    SlotsExhaustedError,
    SMBClient,
    SMBServer,
    StaleGenerationError,
    publish_json,
    read_json,
)
from repro.telemetry import TelemetrySession


@pytest.fixture()
def server():
    return SMBServer(capacity=1 << 22)


@pytest.fixture()
def client(server):
    return SMBClient.in_process(server)


SERVER_DOC = {"mode": "inproc"}
JOB_DOC = {"namespace": "", "count": 8, "w_g_key": 1, "control_key": 2}


class FakeClock:
    """Injectable time source so lease expiry is deterministic."""

    def __init__(self, now=1000.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def make_registry(tmp_path, **kwargs):
    kwargs.setdefault("telemetry", TelemetrySession("off"))
    return MembershipRegistry(tmp_path / "registry", **kwargs)


class TestAtomicPublication:
    """Satellite: registry/rendezvous files are torn-read-proof."""

    def test_reader_racing_writer_never_sees_a_partial_document(
        self, tmp_path
    ):
        """Hammer read_json while publish_json republishes.

        Every observed document must be internally consistent (the
        padding makes a torn write span many filesystem blocks, so a
        non-atomic writer *would* be caught).
        """
        path = tmp_path / "doc.json"
        stop = threading.Event()
        bad = []
        reads = [0]

        def reader():
            while not stop.is_set():
                doc = read_json(path)
                if doc is None:
                    continue  # nothing published yet — fine
                reads[0] += 1
                if doc["payload"] != "x" * int(doc["length"]):
                    bad.append(doc)
                    return

        thread = threading.Thread(target=reader, daemon=True)
        thread.start()
        try:
            for i in range(200):
                length = 1 + (i * 397) % 65536
                publish_json(
                    path, {"length": length, "payload": "x" * length}
                )
        finally:
            stop.set()
            thread.join(timeout=10.0)
        assert not bad, f"torn read observed: {bad[0]}"
        assert reads[0] > 0, "reader never observed a document"

    def test_read_json_missing_and_invalid(self, tmp_path):
        assert read_json(tmp_path / "absent.json") is None
        junk = tmp_path / "junk.json"
        junk.write_text("{not json")
        assert read_json(junk) is None

    def test_publish_leaves_no_temp_files(self, tmp_path):
        path = tmp_path / "doc.json"
        for i in range(5):
            publish_json(path, {"i": i})
        assert [p.name for p in tmp_path.iterdir()] == ["doc.json"]
        assert read_json(path) == {"i": 4}


class TestMembershipRegistry:
    def test_empty_view_before_first_publish(self, tmp_path):
        registry = make_registry(tmp_path)
        view = registry.read()
        assert not view.has_job
        assert view.version == 0
        assert view.members == {}

    def test_join_before_job_publication_rejected(self, tmp_path):
        registry = make_registry(tmp_path)
        with pytest.raises(MembershipError):
            registry.join("early-bird")

    def test_publish_job_then_join_allocates_lowest_slot(self, tmp_path):
        registry = make_registry(tmp_path)
        registry.publish_job(SERVER_DOC, JOB_DOC, capacity=3)
        a = registry.join("a")
        b = registry.join("b")
        assert (a.slot, b.slot) == (0, 1)
        view = registry.read()
        assert view.capacity == 3
        assert view.job["count"] == 8
        assert set(view.members) == {"a", "b"}

    def test_launch_worker_requests_its_rank_slot(self, tmp_path):
        registry = make_registry(tmp_path)
        registry.publish_job(SERVER_DOC, JOB_DOC, capacity=4)
        record = registry.join("rank2", slot=2)
        assert record.slot == 2
        # next anonymous joiner gets the lowest *free* slot, not 3
        assert registry.join("late").slot == 0

    def test_duplicate_member_id_rejected(self, tmp_path):
        registry = make_registry(tmp_path)
        registry.publish_job(SERVER_DOC, JOB_DOC, capacity=2)
        registry.join("a")
        with pytest.raises(MembershipError, match="already registered"):
            registry.join("a")

    def test_occupied_and_out_of_range_slots_rejected(self, tmp_path):
        registry = make_registry(tmp_path)
        registry.publish_job(SERVER_DOC, JOB_DOC, capacity=2)
        registry.join("a", slot=0)
        with pytest.raises(MembershipError, match="held by a live member"):
            registry.join("b", slot=0)
        with pytest.raises(MembershipError, match="out of range"):
            registry.join("b", slot=2)

    def test_capacity_exhausted_raises_typed_error(self, tmp_path):
        registry = make_registry(tmp_path)
        registry.publish_job(SERVER_DOC, JOB_DOC, capacity=2)
        registry.join("a")
        registry.join("b")
        with pytest.raises(SlotsExhaustedError):
            registry.join("c")

    def test_leave_frees_the_slot_and_bumps_epoch(self, tmp_path):
        registry = make_registry(tmp_path)
        registry.publish_job(SERVER_DOC, JOB_DOC, capacity=2)
        registry.join("a")
        registry.join("b")
        epoch = registry.read().epoch
        assert registry.leave("a") is True
        view = registry.read()
        assert view.epoch == epoch + 1
        assert registry.join("c").slot == 0  # reclaimed
        assert registry.leave("a") is False  # already gone

    def test_heartbeat_bumps_version_not_epoch(self, tmp_path):
        registry = make_registry(tmp_path)
        registry.publish_job(SERVER_DOC, JOB_DOC, capacity=2)
        registry.join("a")
        before = registry.read()
        registry.heartbeat("a")
        after = registry.read()
        assert after.version == before.version + 1
        assert after.epoch == before.epoch
        assert after.members["a"].heartbeats == 1

    def test_heartbeat_from_unknown_member_raises(self, tmp_path):
        registry = make_registry(tmp_path)
        registry.publish_job(SERVER_DOC, JOB_DOC, capacity=2)
        with pytest.raises(MembershipError, match="unknown member"):
            registry.heartbeat("ghost")

    def test_lease_expiry_evicts_and_frees_the_slot(self, tmp_path):
        clock = FakeClock()
        registry = make_registry(tmp_path, lease=10.0, clock=clock)
        registry.publish_job(SERVER_DOC, JOB_DOC, capacity=2)
        registry.join("wedged")
        registry.join("healthy")
        assert registry.live_count() == 2
        clock.advance(6.0)
        registry.heartbeat("healthy")  # renews; "wedged" does not
        clock.advance(6.0)  # wedged's lease (t0+10) has now lapsed
        assert registry.live_count() == 1
        epoch = registry.read().epoch
        assert registry.expire_stale() == 1
        view = registry.read()
        assert set(view.members) == {"healthy"}
        assert view.epoch == epoch + 1
        # the evicted member's slot is allocatable again
        assert registry.join("replacement").slot == 0

    def test_publish_job_supersedes_previous_fleet(self, tmp_path):
        registry = make_registry(tmp_path)
        registry.publish_job(SERVER_DOC, JOB_DOC, capacity=2)
        registry.join("old")
        registry.publish_job(SERVER_DOC, dict(JOB_DOC, count=16), 2)
        view = registry.read()
        assert view.members == {}
        assert view.job["count"] == 16

    def test_retire_request_flags_the_member(self, tmp_path):
        registry = make_registry(tmp_path)
        registry.publish_job(SERVER_DOC, JOB_DOC, capacity=2)
        registry.join("a")
        assert registry.retiring("a") is False
        assert registry.request_retire("a") is True
        assert registry.retiring("a") is True
        assert registry.request_retire("ghost") is False

    def test_update_member_patches_fields(self, tmp_path):
        registry = make_registry(tmp_path)
        registry.publish_job(SERVER_DOC, JOB_DOC, capacity=2)
        registry.join("a")
        registry.update_member("a", generation=7)
        assert registry.read().members["a"].generation == 7
        with pytest.raises(MembershipError, match="no field"):
            registry.update_member("a", bogus=1)
        with pytest.raises(MembershipError, match="unknown member"):
            registry.update_member("ghost", generation=1)

    def test_wait_for_job_times_out(self, tmp_path):
        registry = make_registry(tmp_path)
        with pytest.raises(MembershipError, match="no job published"):
            registry.wait_for_job(timeout=0.05, poll=0.01)

    def test_churn_counters_reach_telemetry(self, tmp_path):
        clock = FakeClock()
        session = TelemetrySession("metrics")
        registry = make_registry(
            tmp_path, lease=10.0, telemetry=session, clock=clock
        )
        registry.publish_job(SERVER_DOC, JOB_DOC, capacity=3)
        registry.join("a")
        registry.join("b")
        registry.request_retire("b")
        registry.leave("b")
        clock.advance(11.0)
        registry.expire_stale()  # evicts "a"
        reg = session.registry
        assert reg.counter("smb/membership/joins").value == 2
        assert reg.counter("smb/membership/retires").value == 1
        assert reg.counter("smb/membership/leaves").value == 1
        assert reg.counter("smb/membership/lease_expiries").value == 1
        assert reg.gauge("smb/membership/live").value == 0


class TestMultiNamespaceRegistry:
    """One registry document, several concurrent job namespaces."""

    def test_namespaces_do_not_share_slots(self, tmp_path):
        registry = make_registry(tmp_path)
        registry.publish_job(SERVER_DOC, JOB_DOC, capacity=2)
        registry.publish_job(
            SERVER_DOC, dict(JOB_DOC), capacity=2, namespace="alice"
        )
        default_a = registry.join("a")
        alice_a = registry.join("a", namespace="alice")
        # Same member id, same slot index — different namespaces.
        assert default_a.slot == alice_a.slot == 0
        view = registry.read()
        assert view.namespaces() == ["alice", "default"]
        assert view.total_members() == 2
        assert set(view.entry().members) == {"a"}
        assert set(view.entry("alice").members) == {"a"}

    def test_publishing_one_namespace_keeps_the_others(self, tmp_path):
        registry = make_registry(tmp_path)
        registry.publish_job(SERVER_DOC, JOB_DOC, capacity=2)
        registry.join("worker0")
        registry.publish_job(
            SERVER_DOC, dict(JOB_DOC), capacity=4, namespace="alice"
        )
        view = registry.read()
        assert set(view.entry().members) == {"worker0"}
        assert view.entry("alice").capacity == 4

    def test_leave_and_expiry_are_per_namespace(self, tmp_path):
        clock = FakeClock()
        registry = make_registry(tmp_path, lease=10.0, clock=clock)
        registry.publish_job(SERVER_DOC, JOB_DOC, capacity=2)
        registry.publish_job(
            SERVER_DOC, dict(JOB_DOC), capacity=2, namespace="alice"
        )
        registry.join("w", namespace="alice")
        registry.join("w")
        clock.advance(8.0)
        registry.heartbeat("w", namespace="alice")  # only alice renews
        clock.advance(3.0)  # default's lease (10s) has now lapsed
        registry.expire_stale()
        view = registry.read()
        assert view.live_members("alice")
        assert not view.live_members()
        registry.leave("w", namespace="alice")
        assert registry.read().total_members() == 0

    def test_format_1_documents_still_read(self, tmp_path):
        # A registry written before multi-namespace support: flat doc,
        # implicit single job.  It must parse into the default namespace.
        legacy = {
            "format": 1,
            "version": 7,
            "epoch": 3,
            "server": {"mode": "inproc"},
            "job": {"count": 8},
            "capacity": 4,
            "members": {},
        }
        from repro.smb import RegistryView

        view = RegistryView.from_doc(legacy)
        assert view.namespaces() == ["default"]
        assert view.capacity == 4
        assert view.job["count"] == 8

    def test_format_2_keeps_a_legacy_mirror_of_default(self, tmp_path):
        # Old readers look at the top-level server/job/capacity keys;
        # to_doc mirrors the default namespace there.
        registry = make_registry(tmp_path)
        registry.publish_job(SERVER_DOC, JOB_DOC, capacity=3)
        doc = read_json(registry.path)
        assert doc["format"] == 2
        assert doc["capacity"] == 3
        assert doc["job"]["count"] == 8
        assert "default" in doc["jobs"]

    def test_publish_servers_records_the_fleet(self, tmp_path):
        registry = make_registry(tmp_path)
        registry.publish_job(SERVER_DOC, JOB_DOC, capacity=2)
        fleet = [
            {"id": "s0", "host": "10.0.0.1", "port": 7000},
            {"id": "s1", "host": "10.0.0.2", "port": 7000},
        ]
        registry.publish_servers(fleet)
        view = registry.read()
        assert view.entry().servers == fleet

    def test_wait_for_job_names_the_namespace(self, tmp_path):
        registry = make_registry(tmp_path)
        with pytest.raises(MembershipError, match="namespace 'alice'"):
            registry.wait_for_job(timeout=0.05, namespace="alice")

    def test_registry_lock_serialises_critical_sections(self, tmp_path):
        registry = make_registry(tmp_path)
        order = []

        def hold():
            with registry.lock():
                order.append("enter")
                sleep(0.05)
                order.append("exit")

        threads = [threading.Thread(target=hold) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert order == ["enter", "exit", "enter", "exit"]


class TestElasticControlBlock:
    """Satellite: dynamic slot allocation edge cases."""

    def test_decode_zero_progress_vs_dead_vs_free(self):
        """0 is a live worker at iteration 0; -1 is a *dead* worker at 0;
        FREE is nobody at all — three states, one int64."""
        values = np.asarray([0, -1, ControlBlock.FREE], dtype=np.int64)
        progress, alive = ControlBlock.decode_progress(values)
        np.testing.assert_array_equal(progress, [0, 0, 0])
        np.testing.assert_array_equal(alive, [True, False, False])

    def test_default_create_preclaims_every_slot(self, client):
        control = ControlBlock.create(client, "ctl", capacity=3)
        np.testing.assert_array_equal(control.read_progress(), [0, 0, 0])
        np.testing.assert_array_equal(control.read_generations(), [1, 1, 1])
        assert control.live_count() == 3

    def test_elastic_create_starts_all_free(self, client):
        control = ControlBlock.create(client, "ctl", 4, preclaimed=0)
        assert control.live_count() == 0
        np.testing.assert_array_equal(
            control.read_progress(), [ControlBlock.FREE] * 4
        )

    def test_claim_takes_lowest_free_slot_and_bumps_generation(
        self, client
    ):
        control = ControlBlock.create(client, "ctl", 3, preclaimed=0)
        first = control.claim()
        second = control.claim()
        assert (first.slot, first.generation) == (0, 1)
        assert (second.slot, second.generation) == (1, 1)
        assert control.live_count() == 2

    def test_rejoiner_reclaims_released_slot_at_higher_generation(
        self, client
    ):
        control = ControlBlock.create(client, "ctl", 2, preclaimed=0)
        claim = control.claim(slot=1)
        control.publish_progress(1, 9, generation=claim.generation)
        control.release(1, generation=claim.generation)
        assert int(control.read_progress()[1]) == ControlBlock.FREE
        reclaim = control.claim(slot=1)
        assert reclaim.generation == claim.generation + 1
        assert int(control.read_progress()[1]) == 0  # progress reset

    def test_dead_slot_is_claimable_and_encoding_survives_until_then(
        self, client
    ):
        control = ControlBlock.create(client, "ctl", 2, preclaimed=0)
        claim = control.claim()
        control.mark_dead(claim.slot, 5, generation=claim.generation)
        progress, alive = control.live_progress()
        assert int(progress[claim.slot]) == 5 and not bool(
            alive[claim.slot]
        )
        reclaim = control.claim()  # takes the dead slot over
        assert reclaim.slot == claim.slot
        assert reclaim.generation == claim.generation + 1
        assert control.live_count() == 1

    def test_claim_with_every_slot_live_raises_typed_error(self, client):
        control = ControlBlock.create(client, "ctl", capacity=2)
        with pytest.raises(SlotsExhaustedError):
            control.claim()
        with pytest.raises(SlotsExhaustedError):
            control.claim(slot=1)

    def test_stale_generation_fails_loudly_after_reclaim(self, client):
        control = ControlBlock.create(client, "ctl", 2, preclaimed=0)
        old = control.claim(slot=0)
        control.release(0, generation=old.generation)
        control.claim(slot=0)  # successor bumps the generation
        with pytest.raises(StaleGenerationError):
            control.publish_progress(0, 3, generation=old.generation)
        with pytest.raises(StaleGenerationError):
            control.mark_dead(0, 3, generation=old.generation)
        with pytest.raises(StaleGenerationError):
            control.release(0, generation=old.generation)

    def test_wait_update_wakes_on_membership_churn(self, client):
        """A worker blocked in WAIT_UPDATE on the control segment must
        wake when the fleet changes shape (claim or release), not only
        on progress writes — churn can never deadlock a waiter."""
        control = ControlBlock.create(client, "ctl", 2, preclaimed=0)
        woke = []

        def wait(version):
            woke.append(control._array.wait_update(version, timeout=10.0))

        for mutate in (
            lambda: control.claim(),
            lambda: control.release(0),
        ):
            version = control._array.version()
            waiter = threading.Thread(target=wait, args=(version,),
                                      daemon=True)
            waiter.start()
            sleep(0.02)  # let the waiter block server-side
            mutate()
            waiter.join(timeout=10.0)
            assert not waiter.is_alive(), "waiter missed the churn wakeup"
        assert len(woke) == 2 and all(isinstance(v, int) for v in woke)


def observe_phases(session, comp, comm, worker=0):
    """Record one window's worth of phase samples into the registry."""
    session.registry.observe(f"worker{worker}/phase/comp", comp)
    for phase in ("wwi", "ugw", "rgw", "block"):
        session.registry.observe(f"worker{worker}/phase/{phase}", comm / 4)


class TestAutoscaleController:
    def make(self, **policy):
        policy.setdefault("min_workers", 1)
        policy.setdefault("max_workers", 4)
        policy.setdefault("cooldown_steps", 0)
        session = TelemetrySession("metrics")
        live = {"value": 2}
        controller = AutoscaleController(
            AutoscalePolicy(**policy),
            telemetry=session,
            live_source=lambda: live["value"],
        )
        return controller, session, live

    def test_holds_without_phase_samples(self):
        controller, _session, _live = self.make()
        decision = controller.step()
        assert decision.action == HOLD
        assert decision.signals.comm_ratio is None

    def test_grows_on_low_comm_ratio(self):
        controller, session, _live = self.make()
        observe_phases(session, comp=0.9, comm=0.1)
        decision = controller.step()
        assert decision.action == GROW
        assert decision.signals.comm_ratio == pytest.approx(0.1)

    def test_shrinks_on_high_comm_ratio(self):
        controller, session, _live = self.make()
        observe_phases(session, comp=0.2, comm=0.8)
        assert controller.step().action == SHRINK

    def test_deep_accumulate_queue_forces_shrink(self):
        controller, session, _live = self.make()
        observe_phases(session, comp=0.5, comm=0.5)  # in-band ratio
        session.registry.set("smb/server/queue/accumulate", 9)
        decision = controller.step()
        assert decision.action == SHRINK
        assert "queue depth" in decision.reason

    def test_ratio_is_windowed_not_run_to_date(self):
        controller, session, _live = self.make()
        observe_phases(session, comp=0.9, comm=0.1)
        assert controller.step().action == GROW
        # New window: communication-bound, even though the run-to-date
        # totals still look compute-heavy.
        observe_phases(session, comp=0.1, comm=0.9)
        assert controller.step().action == SHRINK

    def test_bounds_cap_the_fleet(self):
        controller, session, live = self.make(
            min_workers=2, max_workers=2
        )
        observe_phases(session, comp=0.9, comm=0.1)
        assert controller.step().action == HOLD  # at max: cannot grow
        observe_phases(session, comp=0.1, comm=0.9)
        assert controller.step().action == HOLD  # at min: cannot shrink
        live["value"] = 3
        observe_phases(session, comp=0.1, comm=0.9)
        assert controller.step().action == SHRINK

    def test_cooldown_after_an_action(self):
        controller, session, _live = self.make(cooldown_steps=2)
        observe_phases(session, comp=0.9, comm=0.1)
        assert controller.step().action == GROW
        observe_phases(session, comp=0.9, comm=0.1)
        assert controller.step().action == HOLD  # cooling down
        observe_phases(session, comp=0.9, comm=0.1)
        assert controller.step().action == HOLD
        observe_phases(session, comp=0.9, comm=0.1)
        assert controller.step().action == GROW

    def test_decisions_counted_in_telemetry(self):
        controller, session, _live = self.make()
        observe_phases(session, comp=0.9, comm=0.1)
        controller.step()
        controller.step()  # no new samples: hold
        reg = session.registry
        assert reg.counter("autoscale/decisions/grow").value == 1
        assert reg.counter("autoscale/decisions/hold").value == 1

    def test_supervisor_applies_decisions(self):
        controller, session, _live = self.make()

        class Manager:
            spawned = 0
            retired = 0

            def spawn_worker(self):
                Manager.spawned += 1

            def retire_worker(self, member_id=None):
                Manager.retired += 1
                return True

        supervisor = AutoscaleSupervisor(
            Manager(), controller, interval=0.01
        )
        observe_phases(session, comp=0.9, comm=0.1)
        supervisor.start()
        deadline = monotonic() + 10.0
        while not Manager.spawned and monotonic() < deadline:
            sleep(0.01)
        supervisor.stop()
        assert Manager.spawned >= 1
        assert any(d.action == GROW for d in supervisor.decisions)


@pytest.mark.chaos
class TestElasticDrill:
    """The seeded join / retire / reclaim integration drill."""

    def test_join_retire_and_reclaim_complete_the_run(self, tmp_path):
        report = run_elastic_drill(
            tmp_path, num_workers=2, max_workers=4, iterations=60,
            join_at=3, retire_after=2, seed=0, timeout=180.0,
        )
        assert report.completed, report.events
        # The launch fleet finished cleanly with the joiners folded in.
        assert not report.result.failed_ranks
        assert report.joiner is not None and report.joiner_retired
        assert report.joiner.history.retired
        # The replacement reclaimed the retired slot at a newer
        # generation — the churn signature the generations exist for.
        assert report.replacement is not None
        assert report.replacement.slot == report.joiner.slot
        assert report.replacement.generation > report.joiner.generation
        # join(x2 launch + 2 elastic) / leave events all hit the epoch.
        assert report.final_epoch >= 5
        assert report.membership_counters.get(
            "smb/membership/joins", 0
        ) >= 4
        assert report.membership_counters.get(
            "smb/membership/retires", 0
        ) >= 1
