"""Smoke tests for the example scripts (imports + the fast ones run)."""

import ast
import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"
EXAMPLE_SCRIPTS = sorted(EXAMPLES_DIR.glob("*.py"))


class TestExamplesWellFormed:
    def test_at_least_five_examples_exist(self):
        assert len(EXAMPLE_SCRIPTS) >= 5

    @pytest.mark.parametrize(
        "script", EXAMPLE_SCRIPTS, ids=lambda p: p.name
    )
    def test_parses_and_has_docstring_and_main(self, script):
        tree = ast.parse(script.read_text())
        assert ast.get_docstring(tree), f"{script.name} lacks a docstring"
        names = {
            node.name
            for node in tree.body
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        assert "main" in names, f"{script.name} lacks a main()"

    @pytest.mark.parametrize(
        "script", EXAMPLE_SCRIPTS, ids=lambda p: p.name
    )
    def test_compiles(self, script):
        compile(script.read_text(), str(script), "exec")


class TestFastExamplesRun:
    def test_smb_parameter_sharing_runs(self):
        """The raw-SMB example is quick (<10 s): run it end to end."""
        result = subprocess.run(
            [sys.executable, str(EXAMPLES_DIR / "smb_parameter_sharing.py")],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert result.returncode == 0, result.stderr
        assert "global-weight error" in result.stdout
