"""Tests for multi-SMB-server parameter striping (the future-work feature)."""

import numpy as np
import pytest

from repro.caffe import Net, SolverConfig, SyntheticImageDataset
from repro.caffe.params import FlatParams
from repro.core.config import ShmCaffeConfig
from repro.core.worker import ShmCaffeWorker
from repro.perfmodel import model_profile, shmcaffe_a, shmcaffe_multi_server
from repro.smb import (
    SMBClient,
    SMBServer,
    TcpSMBServer,
    attach_sharded_array,
    create_sharded_array,
    shard_counts,
)

from .test_netspec import small_spec


def make_clients(num_servers, capacity=1 << 22):
    servers = [SMBServer(capacity=capacity) for _ in range(num_servers)]
    clients = [SMBClient.in_process(server) for server in servers]
    return servers, clients


class TestShardCounts:
    def test_even_split(self):
        assert shard_counts(100, 4) == [25, 25, 25, 25]

    def test_remainder_spread_over_first_shards(self):
        assert shard_counts(10, 3) == [4, 3, 3]

    def test_single_shard(self):
        assert shard_counts(7, 1) == [7]

    def test_validation(self):
        with pytest.raises(ValueError):
            shard_counts(0, 1)
        with pytest.raises(ValueError):
            shard_counts(5, 0)
        with pytest.raises(ValueError):
            shard_counts(2, 3)


class TestShardedArray:
    def test_roundtrip_across_servers(self):
        _, clients = make_clients(3)
        array = create_sharded_array(clients, "W_g", 100)
        values = np.arange(100, dtype=np.float32)
        array.write(values)
        np.testing.assert_array_equal(array.read(), values)
        assert array.num_shards == 3
        assert array.count == 100

    def test_stripes_live_on_their_own_servers(self):
        servers, clients = make_clients(2)
        create_sharded_array(clients, "W_g", 10)
        assert servers[0].pool.by_name("W_g.shard0").size == 5 * 4
        assert servers[1].pool.by_name("W_g.shard1").size == 5 * 4
        # Neither server holds the other's stripe.
        from repro.smb import UnknownKeyError

        with pytest.raises(UnknownKeyError):
            servers[0].pool.by_name("W_g.shard1")

    def test_attach_by_broadcast_keys(self):
        servers, master_clients = make_clients(2)
        array = create_sharded_array(master_clients, "W_g", 20)
        array.write(np.full(20, 3.5, dtype=np.float32))

        slave_clients = [SMBClient.in_process(s) for s in servers]
        view = attach_sharded_array(
            slave_clients, "W_g", array.shm_keys, 20
        )
        np.testing.assert_allclose(view.read(), 3.5)

    def test_accumulate_into_striped_global(self):
        _, clients = make_clients(2)
        global_w = create_sharded_array(clients, "W_g", 16)
        delta = create_sharded_array(clients, "dW_0", 16)
        delta.write(np.ones(16, dtype=np.float32))
        delta.accumulate_into(global_w)
        delta.accumulate_into(global_w, scale=0.5)
        np.testing.assert_allclose(global_w.read(), 1.5)

    def test_layout_mismatch_rejected(self):
        _, clients2 = make_clients(2)
        _, clients3 = make_clients(3)
        a = create_sharded_array(clients2, "a", 12)
        b = create_sharded_array(clients3, "b", 12)
        with pytest.raises(ValueError):
            a.accumulate_into(b)

    def test_write_size_checked(self):
        _, clients = make_clients(2)
        array = create_sharded_array(clients, "W", 10)
        with pytest.raises(ValueError):
            array.write(np.zeros(11, dtype=np.float32))

    def test_key_count_mismatch_rejected(self):
        _, clients = make_clients(2)
        with pytest.raises(ValueError):
            attach_sharded_array(clients, "x", [1], 10)

    def test_version_monotone(self):
        _, clients = make_clients(2)
        array = create_sharded_array(clients, "W", 8)
        v0 = array.version()
        array.write(np.zeros(8, dtype=np.float32))
        assert array.version() > v0

    def test_over_tcp_servers(self):
        with TcpSMBServer(capacity=1 << 22) as s1, TcpSMBServer(
            capacity=1 << 22
        ) as s2:
            clients = [
                SMBClient.connect(s1.address),
                SMBClient.connect(s2.address),
            ]
            array = create_sharded_array(clients, "W_g", 50)
            values = np.linspace(0, 1, 50).astype(np.float32)
            array.write(values)
            np.testing.assert_allclose(array.read(), values)
            for client in clients:
                client.close()


class TestWorkerOnShardedBuffers:
    def test_seasgd_worker_runs_unchanged(self):
        """ShardedArray is a drop-in for RemoteArray in the worker."""
        dataset = SyntheticImageDataset(
            num_classes=4, image_size=8, train_per_class=30,
            test_per_class=5, noise=0.6, seed=2,
        )
        _, clients = make_clients(3)
        net = Net(small_spec(batch=4), seed=0)
        flat = FlatParams(net)
        global_w = create_sharded_array(clients, "W_g", flat.count)
        global_w.write(flat.get_vector())
        delta = create_sharded_array(clients, "dW_0", flat.count)

        worker = ShmCaffeWorker(
            rank=0,
            net=net,
            config=ShmCaffeConfig(
                solver=SolverConfig(base_lr=0.05, momentum=0.9),
                moving_rate=0.5,
                max_iterations=6,
            ),
            global_weights=global_w,
            increment_buffer=delta,
            batches=dataset.minibatches(4, seed=1),
        )
        history = worker.run()
        assert history.completed_iterations == 6
        # The striped global weights moved with the replica.
        gap = np.abs(global_w.read() - flat.get_vector()).max()
        assert gap < 1.0


class TestMultiServerModel:
    def test_comm_divided_by_server_count(self):
        model = model_profile("vgg16")
        one = shmcaffe_multi_server(model, 16, 1)
        four = shmcaffe_multi_server(model, 16, 4)
        assert four.comm_ms < one.comm_ms / 2

    def test_single_server_matches_shmcaffe_a(self):
        model = model_profile("resnet_50")
        multi = shmcaffe_multi_server(model, 8, 1)
        single = shmcaffe_a(model, 8)
        assert multi.comm_ms == pytest.approx(single.comm_ms)

    def test_local_update_not_striped(self):
        model = model_profile("resnet_50")
        four = shmcaffe_multi_server(model, 8, 4)
        single = shmcaffe_a(model, 8)
        assert four.components["t_ulw"] == pytest.approx(
            single.components["t_ulw"]
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            shmcaffe_multi_server(model_profile("vgg16"), 8, 0)
