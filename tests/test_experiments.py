"""Tests for the experiment harness (shape, content, formatting)."""

import numpy as np
import pytest

from repro.experiments import (
    fig07_bandwidth,
    fig09_table2,
    fig10_comp_comm,
    fig12_table5,
    fig14_table6,
    fig15_comm_compare,
    table03_configs,
    table04_models,
)
from repro.experiments.convergence import ConvergenceSetup, run_platform
from repro.experiments.report import ExperimentResult
from repro.experiments.table03_configs import TABLE3_CONFIGS, HybridConfig


class TestReport:
    def test_format_aligns_columns(self):
        result = ExperimentResult("exp", "demo")
        result.rows = [
            {"a": 1, "b": "x"},
            {"a": 22, "b": "yy"},
        ]
        text = result.format()
        lines = text.splitlines()
        assert "exp" in lines[0]
        assert lines[1].split() == ["a", "b"]

    def test_format_handles_empty(self):
        assert "(no rows)" in ExperimentResult("e", "t").format()

    def test_column_extraction(self):
        result = ExperimentResult("e", "t")
        result.rows = [{"x": 1}, {"x": 2}]
        assert result.column("x") == [1, 2]

    def test_nan_rendered_as_dash(self):
        result = ExperimentResult("e", "t")
        result.rows = [{"x": float("nan")}]
        assert "-" in result.format()


class TestFig7:
    def test_modeled_only(self):
        result = fig07_bandwidth.run(measure=False)
        assert [row["processes"] for row in result.rows] == [2, 4, 8, 16, 32]
        assert all("measured_gbs" not in row for row in result.rows)

    def test_with_measurement(self):
        result = fig07_bandwidth.run(
            counts=(2, 4), measure=True, buffer_mb=0.1, operations=4
        )
        assert all(row["measured_gbs"] > 0 for row in result.rows)

    def test_plateau_note_present(self):
        result = fig07_bandwidth.run(measure=False)
        assert any("6.7" in note for note in result.notes)


class TestAnalyticExperiments:
    def test_table2_rows_and_headline(self):
        result = fig09_table2.run()
        platforms = [row["platform"] for row in result.rows]
        assert platforms == ["caffe", "caffe_mpi", "mpi_caffe", "shmcaffe"]
        caffe_row = result.rows[0]
        assert caffe_row["time@1"] == "22:59"
        assert any("10.1" in note for note in result.notes)

    def test_fig10_has_all_cells(self):
        result = fig10_comp_comm.run()
        assert len(result.rows) == 4 * 2  # platforms x gpu counts
        for row in result.rows:
            assert row["iter_ms"] == pytest.approx(
                row["comp_ms"] + row["comm_ms"], abs=0.2
            )

    def test_table3_labels(self):
        result = table03_configs.run()
        labels = [row["label"] for row in result.rows]
        assert "4 (S4)" in labels
        assert "16 (S4 x A4)" in labels

    def test_hybrid_config_validation(self):
        with pytest.raises(ValueError):
            HybridConfig(8, 3)
        assert HybridConfig(8, 4).groups == 2

    def test_table4_size_errors_small(self):
        result = table04_models.run()
        assert len(result.rows) == 4
        for row in result.rows:
            assert abs(row["size_error_pct"]) < 12.0

    def test_table5_paper_refs_attached(self):
        result = fig12_table5.run()
        flagged = [
            row for row in result.rows if row["paper_comm_pct"] != "-"
        ]
        assert len(flagged) == 5  # the five stated ratios

    def test_table5_single_worker_comm_zero(self):
        result = fig12_table5.run()
        singles = [row for row in result.rows if row["workers"] == 1]
        assert all(row["comm_ms"] == 0.0 for row in singles)

    def test_table6_covers_all_configs(self):
        result = fig14_table6.run()
        assert len(result.rows) == 4 * len(TABLE3_CONFIGS)

    def test_fig15_hybrid_wins_at_16(self):
        result = fig15_comm_compare.run()
        at_16 = [row for row in result.rows if row["gpus"] == 16]
        assert all(row["H_iter_ms"] < row["A_iter_ms"] for row in at_16)


class TestConvergenceHarness:
    def make_tiny_setup(self):
        return ConvergenceSetup(
            epochs=2,
            train_per_class=30,
            test_per_class=6,
            noise=0.7,
            batch_size=5,
            base_lr=0.05,
        )

    def test_caffe_single(self):
        outcome = run_platform(self.make_tiny_setup(), "caffe", workers=1)
        assert np.isfinite(outcome.final_accuracy)

    def test_all_platforms_run_tiny(self):
        setup = self.make_tiny_setup()
        for platform in ("caffe", "caffe_mpi", "mpi_caffe", "shmcaffe_a"):
            outcome = run_platform(setup, platform, workers=2)
            assert outcome.losses or outcome.evals

    def test_hybrid_runs_tiny(self):
        outcome = run_platform(
            self.make_tiny_setup(), "shmcaffe_h", workers=2, group_size=2
        )
        assert np.isfinite(outcome.final_accuracy)

    def test_unknown_platform(self):
        with pytest.raises(ValueError):
            run_platform(self.make_tiny_setup(), "pytorch", workers=1)

    def test_solver_config_steps_every_4_epochs(self):
        setup = self.make_tiny_setup()
        dataset = setup.dataset()
        config = setup.solver_config(dataset, workers=1)
        per_epoch = dataset.train_size // setup.batch_size
        assert config.stepsize == setup.lr_step_epochs * per_epoch
        assert config.lr_policy == "step"
