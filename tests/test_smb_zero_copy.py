"""The zero-copy SMB data path: framing equivalence, buffer reuse, races.

Three families of guarantees from the data-path rebuild:

* **Wire equivalence** — the vectored ``sendmsg`` framing and the
  ``recv_into`` receive path are bit-identical to the historical
  "encode one contiguous frame" representation, for every payload
  container, odd size, and odd offset (property-tested).
* **Buffer contracts** — ``read_into``/``read(out=)`` land bytes in the
  caller's buffer with zero model-size allocations in steady state;
  short or oversized response payloads raise a typed
  :class:`PayloadSizeError` instead of corrupting downstream shapes;
  error payloads never clobber a caller's ``out`` buffer.
* **Concurrency** — the two-channel TCP transport survives a
  ``drop_connection`` storm under two hammering threads without
  deadlock or data corruption, notify-channel reconnects are counted,
  and the sharded fan-out overlaps per-shard latencies while staying
  bit-exact with the sequential gather.
"""

import socket
import threading
import time
import tracemalloc

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.smb import (
    DEFAULT_RETRY_POLICY,
    FaultInjectingTransport,
    FaultPlan,
    InProcTransport,
    Message,
    NotificationTimeout,
    Op,
    PayloadSizeError,
    SMBClient,
    SMBServer,
    Status,
    TcpSMBServer,
    create_sharded_array,
)
from repro.smb.errors import from_wire, to_wire
from repro.smb.protocol import (
    HEADER_SIZE,
    recv_exact,
    recv_message,
    send_message,
)


def _recv_all(sock: socket.socket, nbytes: int) -> bytes:
    return recv_exact(sock, nbytes)


class TestVectoredFramingEquivalence:
    """sendmsg/recv_into framing == the classic contiguous encode."""

    @settings(max_examples=25, deadline=None)
    @given(st.binary(min_size=0, max_size=4097))
    def test_vectored_send_produces_classic_frame(self, payload):
        message = Message(op=Op.WRITE, key=7, offset=3, payload=payload)
        left, right = socket.socketpair()
        try:
            send_message(left, message)
            frame = _recv_all(right, HEADER_SIZE + len(payload))
        finally:
            left.close()
            right.close()
        assert frame == message.encode()

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=1, max_value=1031))
    def test_memoryview_payload_sends_identically(self, nbytes):
        """A NumPy-backed memoryview payload frames exactly like bytes."""
        rng = np.random.default_rng(nbytes)
        array = rng.integers(0, 256, size=nbytes, dtype=np.uint8)
        as_view = Message(
            op=Op.WRITE, key=1, payload=memoryview(array).cast("B")
        )
        as_bytes = Message(op=Op.WRITE, key=1, payload=array.tobytes())
        left, right = socket.socketpair()
        try:
            send_message(left, as_view)
            frame = _recv_all(right, HEADER_SIZE + nbytes)
        finally:
            left.close()
            right.close()
        assert frame == as_bytes.encode()

    @settings(max_examples=25, deadline=None)
    @given(st.binary(min_size=1, max_size=2053))
    def test_recv_into_out_is_bit_identical_and_aliased(self, payload):
        message = Message(op=Op.READ, status=Status.OK, payload=payload)
        backing = bytearray(len(payload) + 16)  # roomier than needed
        out = memoryview(backing)
        left, right = socket.socketpair()
        try:
            send_message(left, message)
            received = recv_message(right, out)
        finally:
            left.close()
            right.close()
        assert bytes(received.payload) == payload
        # Zero-copy: the payload IS the caller's buffer, not a copy.
        assert isinstance(received.payload, memoryview)
        assert received.payload.obj is backing

    def test_error_payload_never_touches_out(self):
        """A failed read must not clobber the caller's array."""
        sentinel = bytearray(b"\xAA" * 64)
        error = Message(
            op=Op.READ, status=Status.ERROR, payload=b"boom" * 4
        )
        left, right = socket.socketpair()
        try:
            send_message(left, error)
            received = recv_message(right, memoryview(sentinel))
        finally:
            left.close()
            right.close()
        assert bytes(received.payload) == b"boom" * 4
        assert sentinel == b"\xAA" * 64

    def test_oversized_payload_falls_back_to_private_buffer(self):
        small = bytearray(8)
        message = Message(op=Op.READ, status=Status.OK, payload=b"x" * 100)
        left, right = socket.socketpair()
        try:
            send_message(left, message)
            received = recv_message(right, memoryview(small))
        finally:
            left.close()
            right.close()
        assert received.payload == b"x" * 100
        assert small == bytearray(8)


class TestReadWriteEquivalence:
    """Zero-copy client ops == the copying ops, for both transports."""

    @pytest.fixture(params=["inproc", "tcp"])
    def client(self, request):
        if request.param == "inproc":
            server = SMBServer(capacity=1 << 22)
            with SMBClient.in_process(server) as client:
                yield client
        else:
            server = TcpSMBServer(capacity=1 << 22).start()
            try:
                with SMBClient.connect(server.address) as client:
                    yield client
            finally:
                server.stop()

    @settings(max_examples=10, deadline=None)
    @given(
        count=st.integers(min_value=1, max_value=601),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_ndarray_write_then_read_into_roundtrip(self, count, seed):
        server = SMBServer(capacity=1 << 22)
        with SMBClient.in_process(server) as client:
            array = client.create_array(f"rt{count}.{seed}", count)
            values = np.random.default_rng(seed).standard_normal(
                count
            ).astype(np.float32)
            array.write(values)
            via_bytes = np.frombuffer(
                client.read(array.access_key, array.nbytes), dtype=np.float32
            )
            scratch = np.empty(count, dtype=np.float32)
            array.read(out=scratch)
            np.testing.assert_array_equal(via_bytes, values)
            np.testing.assert_array_equal(scratch, values)

    def test_odd_offsets_match_bytes_path(self, client):
        count = 257
        array = client.create_array("odd", count)
        values = np.arange(count, dtype=np.float32)
        array.write(values)
        for offset, nbytes in [(0, 4), (4, 12), (12, count * 4 - 12),
                               (1, 7), (13, 29)]:
            expected = client.read(array.access_key, nbytes, offset=offset)
            out = bytearray(nbytes)
            version = client.read_into(
                array.access_key, out, offset=offset
            )
            assert bytes(out) == expected
            assert version >= 1

    def test_noncontiguous_write_is_compacted(self, client):
        array = client.create_array("stride", 128)
        strided = np.arange(256, dtype=np.float32)[::2]
        assert not strided.flags.c_contiguous
        array.write(strided)
        np.testing.assert_array_equal(array.read(), strided)

    def test_read_out_validation(self, client):
        array = client.create_array("val", 64)
        with pytest.raises(ValueError):
            array.read(out=np.empty(63, dtype=np.float32))
        with pytest.raises(ValueError):
            array.read(out=np.empty(64, dtype=np.float64))
        with pytest.raises(TypeError):
            array.read(out=bytearray(256))
        readonly = np.empty(64, dtype=np.float32)
        readonly.setflags(write=False)
        with pytest.raises(ValueError):
            array.read(out=readonly)


class _LyingTransport:
    """Forwards requests but truncates READ response payloads."""

    def __init__(self, inner, keep: int) -> None:
        self.inner = inner
        self.keep = keep

    def request(self, message, out=None):
        response = self.inner.request(message)  # never forwards out
        if message.op is Op.READ and response.status is Status.OK:
            payload = bytes(response.payload)[: self.keep]
            return Message(
                op=response.op, status=response.status, key=response.key,
                count=response.count, payload=payload,
            )
        return response

    def close(self) -> None:
        self.inner.close()


class TestPayloadValidation:
    def test_short_read_raises_typed_error(self):
        server = SMBServer(capacity=1 << 20)
        client = SMBClient(_LyingTransport(InProcTransport(server), keep=8))
        array = client.create_array("w", 64)
        array.write(np.zeros(64, dtype=np.float32))
        with pytest.raises(PayloadSizeError) as excinfo:
            client.read(array.access_key, array.nbytes)
        assert excinfo.value.expected == 256
        assert excinfo.value.got == 8
        with pytest.raises(PayloadSizeError):
            client.read_into(array.access_key, bytearray(256))

    def test_read_into_copies_when_transport_ignores_out(self):
        """A wrapper that drops ``out`` must still fill the caller's
        buffer (the aliasing-detection fallback)."""
        server = SMBServer(capacity=1 << 20)
        client = SMBClient(
            _LyingTransport(InProcTransport(server), keep=1 << 20)
        )
        array = client.create_array("w", 64)
        values = np.arange(64, dtype=np.float32)
        array.write(values)
        out = np.empty(64, dtype=np.float32)
        array.read(out=out)
        np.testing.assert_array_equal(out, values)

    def test_payload_size_error_roundtrips_the_wire(self):
        exc = PayloadSizeError("READ", 256, 8)
        back = from_wire(to_wire(exc))
        assert isinstance(back, PayloadSizeError)
        assert (back.op, back.expected, back.got) == ("READ", 256, 8)


class TestZeroAllocationSteadyState:
    def test_remote_array_read_out_allocates_nothing_model_sized(self):
        count = 1 << 16  # 256 KiB segment
        server = SMBServer(capacity=1 << 20)
        with SMBClient.in_process(server) as client:
            array = client.create_array("big", count)
            array.write(np.ones(count, dtype=np.float32))
            scratch = np.empty(count, dtype=np.float32)
            for _ in range(3):  # warm caches, interned bits, telemetry
                array.read(out=scratch)
            tracemalloc.start()
            try:
                tracemalloc.reset_peak()
                baseline, _ = tracemalloc.get_traced_memory()
                for _ in range(10):
                    array.read(out=scratch)
                _, peak = tracemalloc.get_traced_memory()
            finally:
                tracemalloc.stop()
            # Ten 256-KiB reads; anything near one payload of transient
            # allocation means a copy crept back into the path.
            assert peak - baseline < array.nbytes // 4
            np.testing.assert_array_equal(
                scratch, np.ones(count, dtype=np.float32)
            )


class TestDropConnectionStorm:
    def test_two_thread_hammer_survives_drop_storm(self):
        server = TcpSMBServer(capacity=1 << 22).start()
        # Retries on: a drop that lands mid-exchange (the lock-free
        # notify-channel close exists precisely to interrupt a blocked
        # waiter) surfaces as a retryable connection error.
        client = SMBClient.connect(
            server.address, retry_policy=DEFAULT_RETRY_POLICY
        )
        stop = threading.Event()
        errors: list = []
        count = 1024

        # Created before the storm starts: a CREATE retried across a
        # drop would find its segment already exists.
        arrays = {
            label: client.create_array(f"hammer.{label}", count)
            for label in ("a", "b")
        }
        wait_array = client.create_array("hammer.wait", 16)

        def hammer(label: str) -> None:
            try:
                array = arrays[label]
                scratch = np.empty(count, dtype=np.float32)
                value = 0.0
                while not stop.is_set():
                    value += 1.0
                    payload = np.full(count, value, dtype=np.float32)
                    array.write(payload)
                    array.read(out=scratch)
                    # Byte-exact: nobody else writes this segment, so a
                    # read must return exactly the last write even while
                    # the connection is being yanked away.
                    np.testing.assert_array_equal(scratch, payload)
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append((label, exc))

        def waiter() -> None:
            try:
                seen = 0
                while not stop.is_set():
                    wait_array.write(np.full(16, seen + 1, dtype=np.float32))
                    seen = wait_array.wait_update(seen, timeout=1.0)
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append(("wait", exc))

        threads = [
            threading.Thread(target=hammer, args=("a",)),
            threading.Thread(target=hammer, args=("b",)),
            threading.Thread(target=waiter),
        ]
        for thread in threads:
            thread.start()
        transport = client._transport
        deadline = time.monotonic() + 2.0
        storms = 0
        try:
            while time.monotonic() < deadline:
                time.sleep(0.05)
                transport.drop_connection()
                storms += 1
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=30.0)
        alive = [t for t in threads if t.is_alive()]
        client.close()
        server.stop()
        assert not alive, "hammer threads deadlocked"
        assert not errors, f"hammer threads failed: {errors}"
        assert storms >= 10
        assert transport.reconnects >= 1


class TestNotifyReconnectAccounting:
    def test_notify_channel_reconnects_are_counted(self):
        server = TcpSMBServer(capacity=1 << 20).start()
        try:
            client = SMBClient.connect(server.address)
            array = client.create_array("n", 8)
            transport = client._transport
            # First lazy open of the notify channel is an open, not a
            # reconnect.
            with pytest.raises(NotificationTimeout):
                array.wait_update(array.version(), timeout=0.05)
            assert transport.reconnects == 0
            transport.drop_connection()
            with pytest.raises(NotificationTimeout):
                array.wait_update(array.version(), timeout=0.05)
            # wait_update re-opened the notify channel (+1) and its
            # VERSION pre-read re-opened the command channel (+1).
            assert transport.reconnects == 2
            client.close()
        finally:
            server.stop()


class TestShardedAggregatesAndOverlap:
    def _sharded(self, num_shards: int, count: int, plan=None):
        servers = [SMBServer(capacity=1 << 22) for _ in range(num_shards)]
        transports = [InProcTransport(server) for server in servers]
        if plan is not None:
            transports = [
                FaultInjectingTransport(t, plan.for_rank(i))
                for i, t in enumerate(transports)
            ]
        clients = [SMBClient(t) for t in transports]
        return create_sharded_array(clients, "w", count)

    def test_write_returns_sum_of_shard_versions(self):
        array = self._sharded(4, 1000)
        returned = array.write(np.ones(1000, dtype=np.float32))
        assert returned == sum(array.shard_versions())
        assert returned == array.version()
        # Every stripe advanced exactly once; the old last-shard-only
        # return would have reported 1 here instead of 4.
        assert array.shard_versions() == [1, 1, 1, 1]
        assert returned == 4

    def test_accumulate_returns_destination_aggregate(self):
        src = self._sharded(3, 300)
        # Destination must share the stripe layout *and* servers.
        dst = create_sharded_array(
            [shard._client for shard in src.shards], "g", 300
        )
        src.write(np.ones(300, dtype=np.float32))
        dst.write(np.zeros(300, dtype=np.float32))
        returned = src.accumulate_into(dst, scale=2.0)
        assert returned == dst.version()
        np.testing.assert_array_equal(
            dst.read(), np.full(300, 2.0, dtype=np.float32)
        )

    def test_parallel_fanout_overlaps_injected_latency(self):
        """K delayed shards gather in ~1 delay, not K delays.

        Injected latency (a GIL-releasing sleep) stands in for network
        time, making the overlap assertion deterministic: the sequential
        walk pays 4 x 80 ms, the fan-out must not.
        """
        delay = 0.08
        plan = FaultPlan(delay_rate=1.0, delay_seconds=delay)
        array = self._sharded(4, 4096, plan=plan)
        values = np.arange(4096, dtype=np.float32)
        array.write(values)
        scratch = np.empty(4096, dtype=np.float32)

        start = time.perf_counter()
        array.read(out=scratch)
        parallel_wall = time.perf_counter() - start
        np.testing.assert_array_equal(scratch, values)  # bit-exact

        flat = scratch.reshape(-1)
        start = time.perf_counter()
        for shard, (lo, hi) in zip(array.shards, array._bounds):
            shard.read(out=flat[lo:hi])
        sequential_wall = time.perf_counter() - start
        np.testing.assert_array_equal(scratch, values)

        assert sequential_wall >= 4 * delay
        # Full overlap would be ~1 delay; allow generous scheduler slack
        # while still proving the reads did not serialise.
        assert parallel_wall < 2.5 * delay
        assert parallel_wall < sequential_wall / 1.5

    def test_sharded_read_into_preallocated_full_roundtrip(self):
        array = self._sharded(5, 999)
        values = np.random.default_rng(0).standard_normal(999).astype(
            np.float32
        )
        array.write(values)
        out = np.empty(999, dtype=np.float32)
        returned = array.read(out=out)
        assert returned is out
        np.testing.assert_array_equal(out, values)
