"""Tests for the experiment runner and report formatting details."""

import pytest

from repro.experiments import runner
from repro.experiments.report import ExperimentResult, ratio_or_nan
from repro.perfmodel.training_time import TrainingTime


class TestRunner:
    def test_analytic_covers_every_static_table_and_figure(self):
        results = runner.run_analytic()
        names = {result.experiment for result in results}
        assert names == {
            "fig7", "fig9/table2", "fig10", "table3", "table4",
            "fig12-13/table5", "fig14/table6", "fig15",
        }

    def test_every_analytic_result_has_rows(self):
        for result in runner.run_analytic():
            assert result.rows, f"{result.experiment} produced no rows"

    def test_run_all_renders_without_training(self):
        text = runner.run_all(include_training=False)
        assert "fig9/table2" in text
        assert "fig8" not in text.split("fig9")[0]  # training skipped


class TestReportFormatting:
    def test_floats_formatted_by_magnitude(self):
        result = ExperimentResult("e", "t")
        result.rows = [{"big": 1234.5, "mid": 12.345, "small": 0.01234}]
        text = result.format()
        assert "1234" in text  # big: no decimals
        assert "12.3" in text  # mid: one decimal
        assert "0.012" in text  # small: three decimals

    def test_explicit_column_selection(self):
        result = ExperimentResult("e", "t")
        result.rows = [{"a": 1, "b": 2}]
        text = result.format(columns=["b"])
        assert "b" in text and "a" not in text.splitlines()[1]

    def test_notes_rendered(self):
        result = ExperimentResult("e", "t")
        result.rows = [{"x": 1}]
        result.notes.append("important caveat")
        assert "note: important caveat" in result.format()

    def test_ratio_or_nan(self):
        assert ratio_or_nan(1.0, 2.0) == 0.5
        assert ratio_or_nan(1.0, 0.0) != ratio_or_nan(1.0, 0.0)  # NaN


class TestTrainingTimeFormatting:
    def test_hours_minutes_rounding(self):
        cell = TrainingTime("caffe", 1, hours=22.983, scalability=1.0)
        assert cell.hours_minutes == "22:59"

    def test_minute_overflow_carries_to_hours(self):
        cell = TrainingTime("caffe", 1, hours=1.9999, scalability=1.0)
        assert cell.hours_minutes == "2:00"

    def test_zero_padding(self):
        cell = TrainingTime("caffe", 1, hours=2.05, scalability=1.0)
        assert cell.hours_minutes == "2:03"
