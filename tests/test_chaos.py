"""Chaos suite: seeded fault injection against the SMB fault-tolerance path.

Every test here is deterministic — fault decisions come from seeded RNG
streams (one per worker transport), so a failure reproduces from its seed.
The suite covers the acceptance scenarios of the fault-tolerance layer:
convergence through transient faults, worker death with survivor
completion, wait/wakeup deadlines, TCP reconnect, and structured remote
errors.  All tests carry the ``chaos`` marker so CI can run them as a
dedicated job (``pytest -m chaos``).
"""

import threading
import time

import numpy as np
import pytest

from repro import telemetry
from repro.caffe import SolverConfig, SyntheticImageDataset
from repro.core import (
    DistributedTrainingManager,
    ShmCaffeConfig,
    TerminationCriterion,
)
from repro.smb import (
    CapacityError,
    FaultInjectedError,
    FaultInjectingTransport,
    FaultPlan,
    InProcTransport,
    NotificationTimeout,
    Op,
    RetryExhaustedError,
    RetryPolicy,
    SMBClient,
    SMBServer,
    TcpSMBServer,
    TransportClosedError,
    UnknownKeyError,
)
from repro.smb.protocol import Message

from .test_netspec import small_spec

pytestmark = pytest.mark.chaos

#: Tight backoff so retry storms resolve in milliseconds, not seconds.
FAST_RETRY = RetryPolicy(
    max_attempts=6, base_backoff=0.001, max_backoff=0.01,
    request_timeout=10.0, seed=7,
)


@pytest.fixture()
def dataset():
    return SyntheticImageDataset(
        num_classes=4, image_size=8, train_per_class=40, test_per_class=8,
        noise=0.7, seed=5,
    )


def make_config(iterations=6, criterion=TerminationCriterion.AVERAGE_ITERATIONS):
    return ShmCaffeConfig(
        solver=SolverConfig(base_lr=0.05, momentum=0.9),
        moving_rate=0.2,
        max_iterations=iterations,
        termination=criterion,
    )


class TestFaultInjectingTransport:
    def test_seeded_runs_replay_identically(self):
        """Same seed, same request sequence => same fault sequence."""
        def fault_positions(seed):
            server = SMBServer(capacity=1 << 20)
            plan = FaultPlan(seed=seed, error_rate=0.3)
            transport = FaultInjectingTransport(
                InProcTransport(server), plan
            )
            client = SMBClient(transport)
            shm = None
            key = None
            positions = []
            for i in range(60):
                try:
                    if shm is None:
                        shm = client.create_buffer("seg", 64)
                    elif key is None:
                        key = client.attach(shm)
                    else:
                        client.version(key)
                except FaultInjectedError:
                    positions.append(i)
            return positions

        first = fault_positions(seed=42)
        second = fault_positions(seed=42)
        shifted = fault_positions(seed=43)
        assert first == second
        assert first  # 30% over 60 requests fires at least once
        assert first != shifted

    def test_op_filter_restricts_injection(self):
        server = SMBServer(capacity=1 << 20)
        plan = FaultPlan(seed=1, error_rate=1.0, ops=("READ",))
        client = SMBClient(
            FaultInjectingTransport(InProcTransport(server), plan)
        )
        shm = client.create_buffer("seg", 64)  # CREATE: never injected
        key = client.attach(shm)
        with pytest.raises(FaultInjectedError):
            client.read(key, 8)

    def test_kill_switch_is_permanent(self):
        server = SMBServer(capacity=1 << 20)
        plan = FaultPlan(seed=1, kill_rank=0, kill_after=2).for_rank(0)
        transport = FaultInjectingTransport(InProcTransport(server), plan)
        client = SMBClient(transport)
        shm = client.create_buffer("seg", 64)
        client.attach(shm)
        for _ in range(3):
            with pytest.raises(TransportClosedError):
                client.version(1)
        assert transport.stats["kill"] == 3


class TestRetryPolicy:
    def test_transient_faults_are_absorbed(self):
        """A fault rate well under the retry budget is invisible."""
        server = SMBServer(capacity=1 << 20)
        plan = FaultPlan(seed=3, error_rate=0.25)
        transport = FaultInjectingTransport(InProcTransport(server), plan)
        client = SMBClient(transport, retry_policy=FAST_RETRY)
        shm = client.create_buffer("seg", 256)
        key = client.attach(shm)
        payload = np.arange(64, dtype=np.float32)
        for _ in range(40):
            client.write(key, payload)
            out = np.frombuffer(client.read(key, 256), dtype=np.float32)
            np.testing.assert_array_equal(out, payload)
        assert transport.stats["error"] > 0

    def test_exhausted_retries_surface_with_context(self):
        server = SMBServer(capacity=1 << 20)
        plan = FaultPlan(seed=3, error_rate=1.0)
        client = SMBClient(
            FaultInjectingTransport(InProcTransport(server), plan),
            retry_policy=RetryPolicy(
                max_attempts=3, base_backoff=0.001, seed=0
            ),
        )
        with pytest.raises(RetryExhaustedError) as excinfo:
            client.create_buffer("seg", 64)
        assert excinfo.value.op == "CREATE"
        assert excinfo.value.attempts == 3
        assert "FaultInjectedError" in excinfo.value.last_error

    def test_fatal_server_errors_are_not_retried(self):
        """Deterministic rejections must not burn the retry budget."""
        server = SMBServer(capacity=1 << 20)
        client = SMBClient.in_process(server, retry_policy=FAST_RETRY)
        with telemetry.session("metrics") as tel:
            with pytest.raises(UnknownKeyError):
                client.version(0xDEAD)
            assert tel.registry.counter("smb/client/retries").value == 0

    def test_backoff_is_bounded_and_jittered(self):
        policy = RetryPolicy(
            base_backoff=0.1, backoff_factor=2.0, max_backoff=0.3,
            jitter=0.5, seed=11,
        )
        rng = policy.make_rng()
        sleeps = [policy.backoff(attempt, rng) for attempt in range(1, 8)]
        assert all(0.05 <= s <= 0.3 for s in sleeps)
        assert len(set(sleeps)) > 1  # jitter actually varies


class TestRemoteErrorReconstruction:
    def test_structured_attributes_survive_tcp(self):
        with TcpSMBServer(capacity=4096) as server:
            client = SMBClient.connect(server.address)
            with pytest.raises(CapacityError) as excinfo:
                client.create_buffer("too-big", 1 << 20)
            assert excinfo.value.requested == 1 << 20
            assert excinfo.value.available == 4096
            with pytest.raises(UnknownKeyError) as excinfo:
                client.read(0xBEEF, 8)
            assert excinfo.value.key == 0xBEEF
            client.close()

    def test_notification_timeout_attributes_over_tcp(self):
        with TcpSMBServer(capacity=1 << 20) as server:
            client = SMBClient.connect(server.address)
            array = client.create_array("seg", 16)
            with pytest.raises(NotificationTimeout) as excinfo:
                array.wait_update(version=array.version(), timeout=0.05)
            assert excinfo.value.key == array.access_key
            assert excinfo.value.timeout == pytest.approx(0.05)
            client.close()


class TestWaitUpdateLifecycle:
    @pytest.mark.parametrize("transport_kind", ["inproc", "tcp"])
    def test_close_wakes_blocked_wait(self, transport_kind):
        """close() unblocks an infinite WAIT_UPDATE promptly."""
        if transport_kind == "tcp":
            server = TcpSMBServer(capacity=1 << 20).start()
            client = SMBClient.connect(server.address)
        else:
            server = None
            client = SMBClient.in_process(SMBServer(capacity=1 << 20))
        array = client.create_array("seg", 16)
        outcome = {}

        def waiter():
            try:
                array.wait_update(version=array.version(), timeout=None)
                outcome["result"] = "returned"
            except BaseException as exc:  # noqa: BLE001 - recorded for assert
                outcome["error"] = exc

        thread = threading.Thread(target=waiter, daemon=True)
        thread.start()
        time.sleep(0.2)  # let the wait actually block
        client.close()
        thread.join(timeout=5.0)
        assert not thread.is_alive(), "close() failed to wake the waiter"
        assert isinstance(
            outcome.get("error"),
            (TransportClosedError, Exception),
        )
        if server is not None:
            server.stop()

    def test_wait_does_not_block_the_other_thread_over_tcp(self):
        """The notification channel keeps commands flowing during a wait.

        Regression test for TcpTransport.request holding the exchange lock
        across WAIT_UPDATE, which serialised the worker's other thread.
        """
        with TcpSMBServer(capacity=1 << 20) as server:
            client = SMBClient.connect(server.address)
            array = client.create_array("seg", 16)
            version = array.version()
            got = {}

            def waiter():
                got["version"] = array.wait_update(version, timeout=10.0)

            thread = threading.Thread(target=waiter, daemon=True)
            thread.start()
            time.sleep(0.2)
            # This write must NOT deadlock behind the blocked wait; it is
            # also the update the waiter is waiting for.
            start = time.monotonic()
            array.write(np.zeros(16, dtype=np.float32))
            elapsed = time.monotonic() - start
            thread.join(timeout=5.0)
            assert not thread.is_alive()
            assert got["version"] > version
            assert elapsed < 2.0, "write serialised behind WAIT_UPDATE"
            client.close()


class TestTcpReconnect:
    def test_reconnect_after_server_side_disconnect(self):
        """A dropped connection heals transparently under retry."""
        with TcpSMBServer(capacity=1 << 20) as server:
            client = SMBClient.connect(
                server.address, retry_policy=FAST_RETRY
            )
            array = client.create_array("seg", 16)
            payload = np.arange(16, dtype=np.float32)
            array.write(payload)
            transport = client._transport
            transport.drop_connection()  # server side sees a dead peer
            out = array.read()  # reconnects + re-handshakes under retry
            np.testing.assert_array_equal(out, payload)
            assert transport.reconnects >= 1
            client.close()

    def test_injected_disconnects_heal_under_retry(self):
        with TcpSMBServer(capacity=1 << 20) as server:
            plan = FaultPlan(seed=9, disconnect_rate=0.2)
            from repro.smb.transport import TcpTransport

            tcp = TcpTransport(server.address)
            transport = FaultInjectingTransport(tcp, plan)
            client = SMBClient(transport, retry_policy=FAST_RETRY)
            array = client.create_array("seg", 64)
            payload = np.arange(64, dtype=np.float32)
            for _ in range(25):
                array.write(payload)
                np.testing.assert_array_equal(array.read(), payload)
            assert transport.stats["disconnect"] > 0
            assert tcp.reconnects >= 1
            client.close()


class TestChaosTraining:
    def test_seasgd_converges_through_transient_faults(self, dataset):
        """2-worker SEASGD with ~10% injected faults completes cleanly."""
        with telemetry.session("metrics") as tel:
            manager = DistributedTrainingManager(
                spec_factory=lambda: small_spec(batch=4),
                config=make_config(iterations=6),
                dataset=dataset,
                batch_size=4,
                num_workers=2,
                seed=1,
                retry_policy=FAST_RETRY,
                fault_plan=FaultPlan(seed=1234, error_rate=0.1),
            )
            result = manager.run(timeout=300)
            assert result.failed_ranks == []
            assert all(
                h.completed_iterations >= 1 for h in result.histories
            )
            assert np.isfinite(result.final_global_weights).all()
            # The faults really fired and the retries really absorbed them.
            snapshot = tel.registry.snapshot()
            assert snapshot["smb/faults/error"]["value"] > 0
            assert snapshot["smb/client/retries"]["value"] > 0

    def test_worker_death_survivors_complete(self, dataset):
        """Acceptance scenario: 1 of 4 workers dies mid-run under >=5%
        transient faults; survivors finish with rescaled termination."""
        with telemetry.session("metrics") as tel:
            manager = DistributedTrainingManager(
                spec_factory=lambda: small_spec(batch=4),
                config=make_config(
                    iterations=6,
                    criterion=TerminationCriterion.AVERAGE_ITERATIONS,
                ),
                dataset=dataset,
                batch_size=4,
                num_workers=4,
                seed=1,
                retry_policy=FAST_RETRY,
                fault_plan=FaultPlan(
                    seed=77, error_rate=0.05,
                    kill_rank=2, kill_after=15,
                ),
            )
            result = manager.run(timeout=300)
            assert result.failed_ranks == [2]
            assert sorted(result.surviving_ranks) == [0, 1, 3]
            dead = result.histories[2]
            assert dead.failed and dead.failure
            # Survivors ran to the (rescaled) termination criterion: the
            # mean progress of the live fleet reached the target.
            survivor_iters = [
                h.completed_iterations
                for h in result.histories if not h.failed
            ]
            assert np.mean(survivor_iters) >= 6
            assert all(it >= 1 for it in survivor_iters)
            assert np.isfinite(result.final_global_weights).all()
            # Fault counters landed in the telemetry snapshot.
            snapshot = tel.registry.snapshot()
            assert snapshot["run/workers_lost"]["value"] == 1
            assert snapshot["worker2/faults/fatal"]["value"] == 1
            assert snapshot["worker2/faults/lost"]["value"] == 1
            assert snapshot["smb/faults/kill"]["value"] >= 1

    def test_master_death_falls_back_to_first_finisher(self, dataset):
        """MASTER_STOP survivors terminate even when the master dies."""
        manager = DistributedTrainingManager(
            spec_factory=lambda: small_spec(batch=4),
            config=make_config(
                iterations=5,
                criterion=TerminationCriterion.MASTER_STOP,
            ),
            dataset=dataset,
            batch_size=4,
            num_workers=3,
            seed=1,
            retry_policy=FAST_RETRY,
            # kill_after is generous enough to let bring-up (segment
            # creation, key broadcast) finish before the master dies,
            # but small enough to fire before the master's 5 iterations
            # (~6 SMB requests each) complete.
            fault_plan=FaultPlan(seed=5, kill_rank=0, kill_after=20),
        )
        result = manager.run(timeout=300)
        assert 0 in result.failed_ranks
        survivors = [h for h in result.histories if not h.failed]
        assert survivors, "every worker died; expected survivors"
        assert all(h.completed_iterations >= 1 for h in survivors)
