"""Heavy integration: the full-size model graphs actually run.

Shape inference proves the graphs are well-formed; these tests prove they
*execute* — forward produces a finite loss and backward fills every
learnable gradient — at reduced resolution so the suite stays fast
(VGG16's fully-connected head is built for whatever resolution the spec
is given, so parameter counts differ from the 224px canonical ones here;
that is checked elsewhere).
"""

import numpy as np
import pytest

from repro.caffe import Net, models

#: (model, reduced image size) pairs chosen so every stage stays legal.
CONFIGS = [
    ("inception_v1", 112),
    ("resnet_50", 96),
    ("inception_resnet_v2", 128),
    ("vgg16", 64),
]


@pytest.mark.parametrize("name,image", CONFIGS)
def test_full_graph_forward_backward(name, image):
    spec = models.full_spec(name, batch_size=1, image_size=image)
    net = Net(spec, seed=0)
    rng = np.random.default_rng(0)
    inputs = {
        "data": rng.standard_normal((1, 3, image, image)).astype(
            np.float32
        ),
        "label": np.asarray([3]),
    }
    net.zero_param_diffs()
    outputs = net.forward(inputs, train=True)
    loss = net.total_loss(outputs)
    assert np.isfinite(loss)
    # With 1000 random classes, the head should start near log(1000) —
    # Inception-v1 carries two extra aux losses at weight 0.3 each.
    expected = np.log(1000) * (1.6 if name == "inception_v1" else 1.0)
    assert loss == pytest.approx(expected, rel=0.75)

    net.backward()
    learnable = [
        blob
        for blob, lr_mult, _ in net.param_entries
        if lr_mult > 0.0
    ]
    with_gradient = sum(
        1 for blob in learnable if np.abs(blob.diff).sum() > 0
    )
    # Every learnable tensor must receive some gradient signal.
    assert with_gradient == len(learnable)


def test_inception_v1_aux_heads_receive_gradients():
    spec = models.full_spec("inception_v1", batch_size=1, image_size=112)
    net = Net(spec, seed=0)
    rng = np.random.default_rng(1)
    net.zero_param_diffs()
    net.forward(
        {
            "data": rng.standard_normal((1, 3, 112, 112)).astype(
                np.float32
            ),
            "label": np.asarray([0]),
        },
        train=True,
    )
    net.backward()
    aux_params = [
        blob for blob in net.params if blob.name.startswith("loss1")
    ]
    assert aux_params
    assert all(np.abs(blob.diff).sum() > 0 for blob in aux_params)
