"""End-to-end TCP training and failure-injection tests."""

import numpy as np
import pytest

from repro.caffe import Net, SolverConfig, SyntheticImageDataset
from repro.caffe.params import FlatParams
from repro.core import (
    DistributedTrainingManager,
    ShmCaffeConfig,
    TerminationCriterion,
)
from repro.core.worker import ShmCaffeWorker, WorkerError
from repro.smb import CapacityError, SMBClient, SMBServer, TcpSMBServer

from .test_netspec import small_spec


@pytest.fixture()
def dataset():
    return SyntheticImageDataset(
        num_classes=4, image_size=8, train_per_class=40, test_per_class=8,
        noise=0.7, seed=5,
    )


def make_config(iterations=5):
    return ShmCaffeConfig(
        solver=SolverConfig(base_lr=0.05, momentum=0.9),
        moving_rate=0.2,
        max_iterations=iterations,
        termination=TerminationCriterion.MASTER_STOP,
    )


class TestTcpTrainer:
    def test_full_run_over_tcp(self, dataset):
        """The whole distributed job against a real TCP SMB server."""
        with TcpSMBServer(capacity=1 << 26) as server:
            manager = DistributedTrainingManager(
                spec_factory=lambda: small_spec(batch=4),
                config=make_config(iterations=5),
                dataset=dataset,
                batch_size=4,
                num_workers=3,
                server_address=server.address,
                seed=1,
            )
            result = manager.run(timeout=300)
        assert len(result.histories) == 3
        # MASTER_STOP: the master runs its full budget; slaves stop when
        # its flag lands, which may be before their own 5th iteration.
        assert result.histories[0].completed_iterations >= 5
        assert all(h.completed_iterations >= 1 for h in result.histories)
        assert np.isfinite(result.final_global_weights).all()

    def test_namespaced_jobs_share_one_server(self, dataset):
        """Two sequential jobs coexist on one server via namespaces."""
        with TcpSMBServer(capacity=1 << 26) as server:
            for namespace in ("job1/", "job2/"):
                manager = DistributedTrainingManager(
                    spec_factory=lambda: small_spec(batch=4),
                    config=make_config(iterations=3),
                    dataset=dataset,
                    batch_size=4,
                    num_workers=2,
                    server_address=server.address,
                    namespace=namespace,
                    seed=1,
                )
                result = manager.run(timeout=300)
                assert result.histories[0].completed_iterations >= 3

    def test_hybrid_over_tcp(self, dataset):
        with TcpSMBServer(capacity=1 << 26) as server:
            manager = DistributedTrainingManager(
                spec_factory=lambda: small_spec(batch=4),
                config=make_config(iterations=4),
                dataset=dataset,
                batch_size=4,
                num_workers=4,
                group_size=2,
                server_address=server.address,
                seed=1,
            )
            result = manager.run(timeout=300)
        assert len(result.histories) == 4


class TestFailureInjection:
    def test_update_thread_failure_surfaces_as_worker_error(self, dataset):
        """If the flush path dies (e.g. segment freed under the worker),
        the main thread reports it instead of hanging."""
        server = SMBServer(capacity=1 << 22)
        client = SMBClient.in_process(server)
        net = Net(small_spec(batch=4), seed=0)
        flat = FlatParams(net)
        global_w = client.create_array("W_g", flat.count)
        global_w.write(flat.get_vector())
        delta = client.create_array("dW_0", flat.count)
        worker = ShmCaffeWorker(
            rank=0,
            net=net,
            config=make_config(iterations=10),
            global_weights=global_w,
            increment_buffer=delta,
            batches=dataset.minibatches(4, seed=1),
        )
        delta.free()  # sabotage the increment segment
        with pytest.raises(WorkerError, match="update thread failed"):
            worker.run()

    def test_capacity_exhaustion_fails_cleanly(self, dataset):
        """A server too small for the weight buffers raises CapacityError
        (propagated through the SPMD launcher), not a hang."""
        tiny = SMBServer(capacity=1024)  # far below the model size
        manager = DistributedTrainingManager(
            spec_factory=lambda: small_spec(batch=4),
            config=make_config(iterations=2),
            dataset=dataset,
            batch_size=4,
            num_workers=2,
            server=tiny,
            seed=1,
        )
        with pytest.raises(CapacityError):
            manager.run(timeout=60)

    def test_worker_exception_aborts_peers(self, dataset):
        """A crashing rank unwinds the whole job instead of hanging the
        master in the SHM-key broadcast."""
        manager = DistributedTrainingManager(
            spec_factory=lambda: small_spec(batch=4),
            config=make_config(iterations=50),
            dataset=dataset,
            batch_size=4,
            num_workers=2,
            seed=1,
        )
        original = manager._rank_main

        def sabotaged(comm):
            if comm.rank == 1:
                raise RuntimeError("data pipeline failure")
            return original(comm)

        manager._rank_main = sabotaged
        with pytest.raises(RuntimeError, match="data pipeline failure"):
            manager.run(timeout=120)
