"""Tests for the SMB client API against an in-process server core."""

import numpy as np
import pytest

from repro.smb import (
    ControlBlock,
    NotificationTimeout,
    SegmentRangeError,
    SMBClient,
    SMBServer,
    UnknownKeyError,
)


@pytest.fixture()
def server():
    return SMBServer(capacity=1 << 22)


@pytest.fixture()
def client(server):
    return SMBClient.in_process(server)


class TestRawOperations:
    def test_create_attach_read_write(self, client):
        shm_key = client.create_buffer("w", 64)
        access = client.attach(shm_key, 64)
        client.write(access, b"hello world")
        assert client.read(access, 11) == b"hello world"

    def test_lookup_by_name(self, client):
        shm_key = client.create_buffer("w", 128)
        found_key, size = client.lookup("w")
        assert found_key == shm_key
        assert size == 128

    def test_lookup_unknown_name(self, client):
        with pytest.raises(UnknownKeyError):
            client.lookup("nope")

    def test_attach_bad_key_raises_remote_error(self, client):
        with pytest.raises(UnknownKeyError):
            client.attach(424242)

    def test_write_out_of_range(self, client):
        shm_key = client.create_buffer("w", 8)
        access = client.attach(shm_key)
        with pytest.raises(SegmentRangeError):
            client.write(access, b"123456789")

    def test_accumulate(self, client):
        a = client.create_array("a", 4)
        b = client.create_array("b", 4)
        a.write(np.asarray([1, 2, 3, 4], dtype=np.float32))
        b.write(np.asarray([10, 10, 10, 10], dtype=np.float32))
        b_into_a = b.accumulate_into(a)
        assert b_into_a > 0
        np.testing.assert_allclose(a.read(), [11, 12, 13, 14])

    def test_accumulate_scale(self, client):
        a = client.create_array("a", 2)
        b = client.create_array("b", 2)
        b.write(np.asarray([4, 8], dtype=np.float32))
        b.accumulate_into(a, scale=-0.5)
        np.testing.assert_allclose(a.read(), [-2, -4])

    def test_free_then_use_fails(self, client):
        array = client.create_array("w", 8)
        array.free()
        with pytest.raises(UnknownKeyError):
            array.read()

    def test_version_counts_mutations(self, client):
        array = client.create_array("w", 4)
        assert array.version() == 0
        array.write(np.zeros(4, dtype=np.float32))
        assert array.version() == 1

    def test_wait_update_timeout(self, client):
        array = client.create_array("w", 4)
        with pytest.raises(NotificationTimeout):
            array.wait_update(version=0, timeout=0.01)

    def test_stats_track_bytes(self, client):
        array = client.create_array("w", 256)
        array.write(np.zeros(256, dtype=np.float32))
        array.read()
        stats = client.stats()
        assert stats["bytes_written"] >= 1024
        assert stats["bytes_read"] >= 1024


class TestRemoteArray:
    def test_roundtrip(self, client):
        array = client.create_array("w", 100)
        values = np.arange(100, dtype=np.float32)
        array.write(values)
        np.testing.assert_array_equal(array.read(), values)

    def test_write_wrong_size_rejected(self, client):
        array = client.create_array("w", 10)
        with pytest.raises(ValueError):
            array.write(np.zeros(11, dtype=np.float32))

    def test_accumulate_count_mismatch_rejected(self, client):
        a = client.create_array("a", 4)
        b = client.create_array("b", 8)
        with pytest.raises(ValueError):
            b.accumulate_into(a)

    def test_two_clients_share_by_shm_key(self, server):
        master = SMBClient.in_process(server)
        slave = SMBClient.in_process(server)
        array = master.create_array("W_g", 16)
        array.write(np.full(16, 3.0, dtype=np.float32))
        view = slave.attach_array("W_g", array.shm_key, 16)
        np.testing.assert_allclose(view.read(), 3.0)
        view.write(np.full(16, 5.0, dtype=np.float32))
        np.testing.assert_allclose(array.read(), 5.0)

    def test_int64_dtype_arrays(self, client):
        array = client.create_array("c", 4, dtype="int64")
        array.write(np.asarray([1, 2, 3, 4], dtype=np.int64))
        np.testing.assert_array_equal(array.read(), [1, 2, 3, 4])


class TestControlBlock:
    def test_publish_and_read_progress(self, client):
        control = ControlBlock.create(client, "ctl", capacity=4)
        control.publish_progress(0, 10)
        control.publish_progress(3, 7)
        np.testing.assert_array_equal(
            control.read_progress(), [10, 0, 0, 7]
        )

    def test_stop_flag(self, client):
        control = ControlBlock.create(client, "ctl", capacity=2)
        assert control.stop_code() == ControlBlock.STOP_CLEAR
        control.signal_stop(2)
        assert control.stop_code() == 2

    def test_zero_stop_code_rejected(self, client):
        control = ControlBlock.create(client, "ctl", capacity=2)
        with pytest.raises(ValueError):
            control.signal_stop(0)

    def test_rank_bounds(self, client):
        control = ControlBlock.create(client, "ctl", capacity=2)
        with pytest.raises(ValueError):
            control.publish_progress(2, 1)

    def test_attach_shares_progress(self, server):
        master = SMBClient.in_process(server)
        slave = SMBClient.in_process(server)
        control = ControlBlock.create(master, "ctl", capacity=2)
        view = ControlBlock.attach(slave, "ctl", control.shm_key, 2)
        view.publish_progress(1, 42)
        np.testing.assert_array_equal(control.read_progress(), [0, 42])
