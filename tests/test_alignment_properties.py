"""Integration properties: straggler alignment, increment conservation,
gradient clipping, and stripe-layout invariants (hypothesis)."""

import threading
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.caffe import Net, SGDSolver, SolverConfig, SyntheticImageDataset
from repro.caffe.params import FlatParams
from repro.core import (
    DistributedTrainingManager,
    ShmCaffeConfig,
    TerminationCriterion,
)
from repro.smb import SMBClient, SMBServer, shard_counts

from .test_net_solver import make_inputs
from .test_netspec import small_spec


@pytest.fixture()
def dataset():
    return SyntheticImageDataset(
        num_classes=4, image_size=8, train_per_class=40, test_per_class=8,
        noise=0.7, seed=8,
    )


class SlowBatches:
    """Wrap a minibatch stream, sleeping before each batch (a straggler)."""

    def __init__(self, inner, delay_s):
        self.inner = inner
        self.delay_s = delay_s

    def __iter__(self):
        return self

    def __next__(self):
        time.sleep(self.delay_s)
        return next(self.inner)


def make_straggler_manager(dataset, criterion, iterations, slow_rank=1,
                           delay_s=0.05):
    manager = DistributedTrainingManager(
        spec_factory=lambda: small_spec(batch=4),
        config=ShmCaffeConfig(
            solver=SolverConfig(base_lr=0.05, momentum=0.9),
            max_iterations=iterations,
            termination=criterion,
        ),
        dataset=dataset,
        batch_size=4,
        num_workers=2,
        seed=1,
    )
    original = manager._rank_main

    def delayed(comm):
        if comm.rank == slow_rank:
            # Slow this worker's data pipeline down (shared-bus effect
            # from paper Sec. III-E).
            real = dataset.minibatches(4, seed=99, rank=comm.rank,
                                       num_shards=2)
            slow = SlowBatches(real, delay_s)
            fast_minibatches = dataset.minibatches

            def patched(batch_size, seed=0, rank=0, num_shards=1,
                        skip=0):
                if rank == slow_rank:
                    return slow
                return fast_minibatches(batch_size, seed=seed, rank=rank,
                                        num_shards=num_shards, skip=skip)

            dataset.minibatches = patched
            try:
                return original(comm)
            finally:
                dataset.minibatches = fast_minibatches
        return original(comm)

    manager._rank_main = delayed
    return manager


class TestStragglerAlignment:
    """Sec. III-E: deviations in worker speed are absorbed by the shared
    progress info instead of idling fast workers at the end."""

    def test_first_finisher_cuts_the_straggler_short(self, dataset):
        manager = make_straggler_manager(
            dataset, TerminationCriterion.FIRST_FINISHER, iterations=12
        )
        result = manager.run(timeout=300)
        fast = result.histories[0].completed_iterations
        slow = result.histories[1].completed_iterations
        assert fast >= 12
        assert slow < fast  # the straggler stopped early, not the fleet

    def test_average_iterations_lets_fast_workers_compensate(self, dataset):
        manager = make_straggler_manager(
            dataset, TerminationCriterion.AVERAGE_ITERATIONS, iterations=10
        )
        result = manager.run(timeout=300)
        iters = [h.completed_iterations for h in result.histories]
        # The fleet's mean progress reached the target...
        assert float(np.mean(iters)) >= 10 - 1
        # ...with the fast worker doing more than the slow one.
        assert iters[0] > iters[1]


class TestIncrementConservation:
    def test_global_drift_equals_sum_of_all_pushed_increments(self, dataset):
        """Across N concurrent workers, W_g(final) - W_g(init) must equal
        the sum of every increment anyone pushed: the SMB server's
        accumulate is pure, order-independent addition."""
        server = SMBServer(capacity=1 << 24)
        pushed_lock = threading.Lock()
        pushed = []

        from repro.smb.client import RemoteArray

        original_write = RemoteArray.write

        def spying_write(self, values):
            if self.name.startswith("dW_"):
                with pushed_lock:
                    pushed.append(np.array(values, copy=True))
            return original_write(self, values)

        manager = DistributedTrainingManager(
            spec_factory=lambda: small_spec(batch=4),
            config=ShmCaffeConfig(
                solver=SolverConfig(base_lr=0.05, momentum=0.9),
                max_iterations=6,
                termination=TerminationCriterion.MASTER_STOP,
            ),
            dataset=dataset,
            batch_size=4,
            num_workers=3,
            server=server,
            seed=1,
        )
        net = Net(small_spec(batch=4), seed=1)
        initial = FlatParams(net).get_vector()

        RemoteArray.write = spying_write
        try:
            result = manager.run(timeout=300)
        finally:
            RemoteArray.write = original_write

        drift = result.final_global_weights - initial
        total_pushed = np.sum(pushed, axis=0)
        np.testing.assert_allclose(drift, total_pushed, rtol=1e-3,
                                   atol=1e-4)


class TestGradientClipping:
    def test_clip_rescales_to_threshold(self):
        net = Net(small_spec(), seed=0)
        solver = SGDSolver(
            net, SolverConfig(base_lr=0.1, clip_gradients=1.0)
        )
        solver.compute_gradients(make_inputs())
        # Inflate gradients so the norm clearly exceeds the cap.
        for blob in net.params:
            blob.diff *= 100.0
        norm_before = solver.clip_stored_gradients()
        assert norm_before > 1.0
        total = sum(
            float(np.dot(b.diff.ravel(), b.diff.ravel()))
            for b in net.params
        )
        assert np.sqrt(total) == pytest.approx(1.0, rel=1e-4)

    def test_no_clip_below_threshold(self):
        net = Net(small_spec(), seed=0)
        solver = SGDSolver(
            net, SolverConfig(base_lr=0.1, clip_gradients=1e9)
        )
        solver.compute_gradients(make_inputs())
        before = [blob.diff.copy() for blob in net.params]
        solver.clip_stored_gradients()
        for prior, blob in zip(before, net.params):
            np.testing.assert_array_equal(prior, blob.diff)

    def test_clipped_training_stays_finite_at_high_lr(self):
        clipped = SGDSolver(
            Net(small_spec(), seed=0),
            SolverConfig(base_lr=5.0, momentum=0.9, clip_gradients=0.1),
        )
        inputs = make_inputs()
        for _ in range(10):
            stats = clipped.step(inputs)
        assert np.isfinite(stats["loss"])


@settings(max_examples=50, deadline=None)
@given(
    count=st.integers(min_value=1, max_value=10_000),
    shards=st.integers(min_value=1, max_value=16),
)
def test_shard_counts_partition_property(count, shards):
    """Stripe sizes always sum to the total, differ by at most one, and
    are all positive (when feasible)."""
    if shards > count:
        with pytest.raises(ValueError):
            shard_counts(count, shards)
        return
    counts = shard_counts(count, shards)
    assert sum(counts) == count
    assert max(counts) - min(counts) <= 1
    assert all(c > 0 for c in counts)


@settings(max_examples=20, deadline=None)
@given(
    count=st.integers(min_value=4, max_value=300),
    shards=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=0, max_value=99),
)
def test_sharded_roundtrip_property(count, shards, seed):
    """write->read over any stripe layout is the identity."""
    from repro.smb import create_sharded_array

    if shards > count:
        return
    servers = [SMBServer(capacity=1 << 20) for _ in range(shards)]
    clients = [SMBClient.in_process(server) for server in servers]
    array = create_sharded_array(clients, "W", count)
    values = np.random.default_rng(seed).standard_normal(count).astype(
        np.float32
    )
    array.write(values)
    np.testing.assert_array_equal(array.read(), values)
