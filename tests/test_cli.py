"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_reproduce_flags(self):
        args = build_parser().parse_args(["reproduce", "--analytic"])
        assert args.analytic is True
        assert args.full is False

    def test_train_defaults(self):
        args = build_parser().parse_args(["train"])
        assert args.platform == "shmcaffe_a"
        assert args.workers == 4
        assert args.moving_rate == pytest.approx(0.2)

    def test_train_rejects_unknown_platform(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "--platform", "pytorch"])

    def test_bandwidth_connect_parsing(self):
        args = build_parser().parse_args(
            ["bandwidth", "--connect", "10.0.0.1:7000"]
        )
        assert args.connect == "10.0.0.1:7000"


class TestExecution:
    def test_train_tiny_run(self, capsys):
        code = main(
            [
                "train", "--platform", "shmcaffe_a", "--workers", "2",
                "--epochs", "1", "--samples-per-class", "30",
                "--batch-size", "5",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "final acc" in out
        assert "shmcaffe_a" in out

    def test_reproduce_analytic_prints_tables(self, capsys):
        code = main(["reproduce", "--analytic"])
        assert code == 0
        out = capsys.readouterr().out
        for marker in ("fig9/table2", "fig12-13/table5", "fig15"):
            assert marker in out
