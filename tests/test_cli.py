"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_reproduce_flags(self):
        args = build_parser().parse_args(["reproduce", "--analytic"])
        assert args.analytic is True
        assert args.full is False

    def test_train_defaults(self):
        args = build_parser().parse_args(["train"])
        assert args.platform == "shmcaffe_a"
        assert args.workers == 4
        assert args.moving_rate == pytest.approx(0.2)

    def test_train_rejects_unknown_platform(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "--platform", "pytorch"])

    def test_bandwidth_connect_parsing(self):
        args = build_parser().parse_args(
            ["bandwidth", "--connect", "10.0.0.1:7000"]
        )
        assert args.connect == "10.0.0.1:7000"

    def test_global_flag_defaults(self):
        args = build_parser().parse_args(["train"])
        assert args.log_level == "warning"
        assert args.telemetry == "off"
        assert args.telemetry_out == ""

    def test_telemetry_and_log_level_flags(self):
        args = build_parser().parse_args(
            ["--log-level", "debug", "--telemetry", "trace",
             "--telemetry-out", "/tmp/t", "train"]
        )
        assert args.log_level == "debug"
        assert args.telemetry == "trace"
        assert args.telemetry_out == "/tmp/t"

    def test_telemetry_mode_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--telemetry", "loud", "train"])

    def test_telemetry_report_requires_path(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["telemetry", "report"])
        args = build_parser().parse_args(
            ["telemetry", "report", "run/metrics.json"]
        )
        assert args.metrics == "run/metrics.json"


class TestExecution:
    def test_train_tiny_run(self, capsys):
        code = main(
            [
                "train", "--platform", "shmcaffe_a", "--workers", "2",
                "--epochs", "1", "--samples-per-class", "30",
                "--batch-size", "5",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "final acc" in out
        assert "shmcaffe_a" in out

    def test_reproduce_analytic_prints_tables(self, capsys):
        code = main(["reproduce", "--analytic"])
        assert code == 0
        out = capsys.readouterr().out
        for marker in ("fig9/table2", "fig12-13/table5", "fig15"):
            assert marker in out

    def test_train_with_telemetry_saves_and_reports(self, capsys, tmp_path):
        from repro import telemetry
        from repro.telemetry import runtime

        original = telemetry.current()
        try:
            code = main(
                [
                    "--telemetry", "trace",
                    "--telemetry-out", str(tmp_path),
                    "train", "--platform", "shmcaffe_a", "--workers", "2",
                    "--epochs", "1", "--samples-per-class", "20",
                    "--batch-size", "5",
                ]
            )
        finally:
            runtime._current = original
        assert code == 0
        out = capsys.readouterr().out
        assert "phase timings (eq. 8)" in out
        assert "measured vs perfmodel" in out
        assert (tmp_path / "metrics.json").exists()
        assert (tmp_path / "trace.json").exists()

        code = main(
            ["telemetry", "report", str(tmp_path / "metrics.json")]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "phase timings (eq. 8)" in out

    def test_smb_bench_smoke_writes_json_and_gates(self, capsys, tmp_path):
        import json

        out_path = tmp_path / "BENCH_smb.json"
        args = [
            "smb", "bench", "--transports", "inproc", "--sizes", "4096",
            "--iterations", "3", "--out", str(out_path),
        ]
        code = main(args)
        assert code == 0
        stdout = capsys.readouterr().out
        assert "GB/s" in stdout
        payload = json.loads(out_path.read_text())
        assert len(payload["cells"]) == 3  # READ/WRITE/ACCUMULATE at 4 KiB
        for cell in payload["cells"]:
            assert cell["p50_s"] > 0
            assert cell["gb_per_s"] > 0

        # Self-comparison never regresses...
        code = main(args + ["--compare", str(out_path)])
        assert code == 0
        assert "no regressions" in capsys.readouterr().out

        # ...but an impossibly fast baseline trips the gate.
        fast = dict(payload)
        fast["cells"] = [
            dict(cell, p50_s=cell["p50_s"] / 1e6)
            for cell in payload["cells"]
        ]
        baseline = tmp_path / "fast.json"
        baseline.write_text(json.dumps(fast))
        code = main(args + ["--compare", str(baseline)])
        assert code == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_smb_bench_flag_parsing(self):
        args = build_parser().parse_args(
            ["smb", "bench", "--quick", "--sharded", "4",
             "--max-regression", "3.5", "--tenancy"]
        )
        assert args.quick is True
        assert args.sharded == 4
        assert args.max_regression == pytest.approx(3.5)
        assert args.tenancy is True
        assert args.entry.__name__ == "_cmd_smb_bench"

    def test_smb_tenants_lists_quotas_and_usage(self, capsys):
        import json

        from repro.smb import SMBClient, TcpSMBServer

        server = TcpSMBServer(capacity=1 << 20).start()
        try:
            admin = SMBClient.connect(server.address)
            admin.create_tenant("alice", quota=4096)
            alice = SMBClient.connect(server.address, tenant="alice")
            alice.create_buffer("w", 1024)
            host, port = server.address
            code = main(
                ["smb", "tenants", "--address", f"{host}:{port}"]
            )
            assert code == 0
            out = capsys.readouterr().out
            assert "alice" in out
            assert "4096" in out
            code = main(
                ["smb", "tenants", "--address", f"{host}:{port}", "--json"]
            )
            assert code == 0
            doc = json.loads(capsys.readouterr().out)
            assert doc["alice"]["used"] == 1024
            alice.close()
            admin.close()
        finally:
            server.stop()

    def test_smb_members_renders_every_namespace(self, capsys, tmp_path):
        import json

        from repro.smb import MembershipRegistry
        from repro.telemetry import TelemetrySession

        registry = MembershipRegistry(
            tmp_path / "registry", telemetry=TelemetrySession("off")
        )
        registry.publish_job(
            {"mode": "inproc"}, {"count": 4}, capacity=2
        )
        registry.publish_job(
            {"mode": "inproc"}, {"count": 8}, capacity=3,
            namespace="alice",
        )
        registry.join("w0")
        registry.join("w1", namespace="alice")
        code = main(
            ["smb", "members", "--registry", str(tmp_path / "registry")]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "alice" in out and "default" in out
        assert "w0" in out and "w1" in out
        code = main(
            ["smb", "members", "--registry", str(tmp_path / "registry"),
             "--json"]
        )
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert set(doc["jobs"]) == {"alice", "default"}

    def test_telemetry_report_bad_input_is_clean_error(self, capsys, tmp_path):
        code = main(["telemetry", "report", str(tmp_path / "missing.json")])
        assert code == 1
        assert "error:" in capsys.readouterr().err

        bogus = tmp_path / "bogus.json"
        bogus.write_text('{"hello": 1}')
        code = main(["telemetry", "report", str(bogus)])
        assert code == 1
        err = capsys.readouterr().err
        assert "not a telemetry metrics dump" in err
