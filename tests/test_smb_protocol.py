"""Wire-protocol framing tests, including property-based roundtrips."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.smb.errors import SMBProtocolError
from repro.smb.protocol import HEADER_SIZE, Message, Op, Status


class TestMessageFraming:
    def test_roundtrip_basic(self):
        message = Message(
            op=Op.WRITE, key=7, offset=16, count=4, payload=b"data"
        )
        encoded = message.encode()
        decoded = Message.decode(encoded[:HEADER_SIZE], encoded[HEADER_SIZE:])
        assert decoded == message

    def test_empty_payload(self):
        message = Message(op=Op.STATS)
        encoded = message.encode()
        assert len(encoded) == HEADER_SIZE
        decoded = Message.decode(encoded, b"")
        assert decoded.op is Op.STATS
        assert decoded.payload == b""

    def test_payload_length_mismatch_rejected(self):
        message = Message(op=Op.WRITE, payload=b"abcd")
        encoded = message.encode()
        with pytest.raises(SMBProtocolError):
            Message.decode(encoded[:HEADER_SIZE], b"abc")

    def test_unknown_opcode_rejected(self):
        message = Message(op=Op.READ)
        encoded = bytearray(message.encode())
        encoded[0] = 200  # not a valid Op
        with pytest.raises(SMBProtocolError):
            Message.decode(bytes(encoded[:HEADER_SIZE]), b"")

    def test_negative_keys_survive(self):
        # Keys are signed on the wire; large hashes must not corrupt.
        message = Message(op=Op.ATTACH, key=-1, key2=-(1 << 40))
        encoded = message.encode()
        decoded = Message.decode(encoded[:HEADER_SIZE], b"")
        assert decoded.key == -1
        assert decoded.key2 == -(1 << 40)


@given(
    op=st.sampled_from(list(Op)),
    status=st.sampled_from(list(Status)),
    key=st.integers(min_value=-(2 ** 62), max_value=2 ** 62),
    key2=st.integers(min_value=-(2 ** 62), max_value=2 ** 62),
    offset=st.integers(min_value=0, max_value=2 ** 62),
    count=st.integers(min_value=0, max_value=2 ** 62),
    scale=st.floats(allow_nan=False, allow_infinity=False, width=32),
    payload=st.binary(max_size=512),
)
def test_roundtrip_property(op, status, key, key2, offset, count, scale,
                            payload):
    """Every well-formed message survives encode/decode bit-exactly."""
    message = Message(
        op=op, status=status, key=key, key2=key2, offset=offset,
        count=count, scale=scale, payload=payload,
    )
    encoded = message.encode()
    decoded = Message.decode(encoded[:HEADER_SIZE], encoded[HEADER_SIZE:])
    assert decoded == message
