"""Tests for the discrete-event kernel, the SMB contention scenario, and
the Fig. 7 bandwidth model/measurement."""

import numpy as np
import pytest

from repro.perfmodel import (
    FIG7_PROCESS_COUNTS,
    PAPER_HARDWARE,
    fig7_series,
    measure_smb_bandwidth,
    model_profile,
    modeled_bandwidth_gbs,
    shmcaffe_a,
    simulate_seasgd_contention,
)
from repro.perfmodel.desim import (
    Event,
    Resource,
    SimulationError,
    Simulator,
    Timeout,
)


class TestKernel:
    def test_timeouts_execute_in_order(self):
        sim = Simulator()
        order = []
        sim.schedule(3.0, lambda: order.append("c"))
        sim.schedule(1.0, lambda: order.append("a"))
        sim.schedule(2.0, lambda: order.append("b"))
        end = sim.run()
        assert order == ["a", "b", "c"]
        assert end == 3.0

    def test_process_with_timeouts(self):
        sim = Simulator()
        marks = []

        def proc():
            yield Timeout(5.0)
            marks.append(sim.now)
            yield Timeout(2.5)
            marks.append(sim.now)

        sim.process(proc())
        sim.run()
        assert marks == [5.0, 7.5]

    def test_fifo_resource_serialises(self):
        sim = Simulator()
        resource = Resource("nic")
        finish_times = {}

        def proc(name):
            yield resource.request(10.0)
            finish_times[name] = sim.now

        sim.process(proc("first"))
        sim.process(proc("second"))
        sim.run()
        assert finish_times["first"] == 10.0
        assert finish_times["second"] == 20.0
        assert resource.busy_time == 20.0

    def test_event_wakes_waiter(self):
        sim = Simulator()
        event = Event()
        woken = []

        def waiter():
            yield event
            woken.append(sim.now)

        def firer():
            yield Timeout(4.0)
            event.succeed(sim)

        sim.process(waiter())
        sim.process(firer())
        sim.run()
        assert woken == [4.0]

    def test_pretriggered_event_passes_through(self):
        sim = Simulator()
        event = Event()
        event.succeed(sim)
        done = []

        def proc():
            yield event
            done.append(True)

        sim.process(proc())
        sim.run()
        assert done == [True]

    def test_bad_yield_rejected(self):
        sim = Simulator()

        def proc():
            yield "nonsense"

        with pytest.raises(SimulationError):
            sim.process(proc())

    def test_negative_timeout_rejected(self):
        with pytest.raises(ValueError):
            Timeout(-1.0)

    def test_run_until_stops_clock(self):
        sim = Simulator()
        sim.schedule(100.0, lambda: None)
        assert sim.run(until=10.0) == 10.0


class TestContentionScenario:
    def test_single_worker_no_comm(self):
        result = simulate_seasgd_contention(
            model_profile("inception_v1"), workers=1, iterations=10
        )
        assert result.mean_comm_ms == 0.0

    def test_comm_grows_with_workers(self):
        model = model_profile("resnet_50")
        comm = [
            simulate_seasgd_contention(
                model, workers=n, iterations=20, seed=1
            ).mean_comm_ms
            for n in (2, 8, 16)
        ]
        assert comm[0] < comm[1] < comm[2]

    def test_spill_emerges_for_vgg(self):
        # VGG16's flush outlives compute: visible comm must far exceed a
        # single read's transfer time.
        model = model_profile("vgg16")
        result = simulate_seasgd_contention(model, workers=2, iterations=15)
        read_ms = model.param_bytes / (
            PAPER_HARDWARE.smb_effective_bandwidth_gbs * 1e9
        ) * 1e3
        assert result.mean_comm_ms > 1.5 * read_ms

    def test_iteration_time_exceeds_compute(self):
        model = model_profile("inception_v1")
        result = simulate_seasgd_contention(model, workers=8, iterations=20)
        assert result.mean_iteration_ms > model.compute_ms

    def test_utilisations_bounded(self):
        result = simulate_seasgd_contention(
            model_profile("inception_resnet_v2"), workers=8, iterations=20
        )
        assert 0.0 < result.nic_utilisation <= 1.0
        assert 0.0 < result.mem_utilisation <= 1.0

    def test_protocol_overhead_slows_everything(self):
        model = model_profile("inception_v1")
        clean = simulate_seasgd_contention(
            model, workers=8, iterations=20, seed=2
        )
        slowed = simulate_seasgd_contention(
            model, workers=8, iterations=20, seed=2,
            protocol_overhead_ms=20.0,
        )
        assert slowed.mean_comm_ms > clean.mean_comm_ms

    def test_update_interval_reduces_comm_share(self):
        model = model_profile("resnet_50")
        every = simulate_seasgd_contention(
            model, workers=8, iterations=20, update_interval=1, seed=3
        )
        sparse = simulate_seasgd_contention(
            model, workers=8, iterations=20, update_interval=4, seed=3
        )
        assert sparse.mean_comm_ratio < every.mean_comm_ratio

    def test_desim_and_analytic_agree_on_trend(self):
        # The queue-level simulation and the calibrated analytic model
        # must rank worker counts identically (absolute values differ: the
        # analytic beta includes protocol overheads desim omits).
        model = model_profile("resnet_50")
        for low, high in ((2, 8), (8, 16)):
            desim_low = simulate_seasgd_contention(
                model, low, iterations=15, seed=0
            ).mean_comm_ms
            desim_high = simulate_seasgd_contention(
                model, high, iterations=15, seed=0
            ).mean_comm_ms
            analytic_low = shmcaffe_a(model, low).comm_ms
            analytic_high = shmcaffe_a(model, high).comm_ms
            assert (desim_high > desim_low) == (
                analytic_high > analytic_low
            )

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            simulate_seasgd_contention(
                model_profile("vgg16"), workers=0
            )


class TestFig7Bandwidth:
    def test_curve_monotone_and_saturating(self):
        series = fig7_series()
        values = [value for _, value in series]
        assert all(b > a for a, b in zip(values, values[1:]))
        assert values[-1] == pytest.approx(
            PAPER_HARDWARE.smb_effective_bandwidth_gbs, rel=0.01
        )

    def test_plateau_is_96pct_of_hca(self):
        plateau = modeled_bandwidth_gbs(64)
        assert plateau / PAPER_HARDWARE.ib_bandwidth_gbs == pytest.approx(
            0.96, abs=0.01
        )

    def test_default_counts_match_paper_sweep(self):
        assert FIG7_PROCESS_COUNTS == (2, 4, 8, 16, 32)

    def test_invalid_processes(self):
        with pytest.raises(ValueError):
            modeled_bandwidth_gbs(0)

    def test_live_measurement_moves_expected_bytes(self):
        sample = measure_smb_bandwidth(
            processes=3, buffer_mb=0.2, operations=6
        )
        expected = 3 * 6 * int(0.2e6 // 4) * 4
        assert sample.bytes_moved == expected
        assert sample.gbs > 0

    def test_live_measurement_validation(self):
        with pytest.raises(ValueError):
            measure_smb_bandwidth(processes=0)
