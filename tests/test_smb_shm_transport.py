"""Local shared-memory transport: correctness against the TCP path.

The shm doorway must be a drop-in third transport: bit-exact with TCP on
the same data, correct across block growth (both client-requested for
large requests and server-initiated for large responses), able to run
notification waits without blocking the data path, and clean on
shutdown.
"""

import threading
import time

import numpy as np
import pytest

from repro.smb import ShmSMBServer, SMBClient, TcpSMBServer
from repro.smb.errors import SMBError
from repro.smb.shm_transport import DATA_OFFSET


@pytest.fixture
def shm_server(tmp_path):
    with ShmSMBServer(tmp_path / "smb.sock", capacity=1 << 24) as server:
        yield server


class TestRoundTrip:
    def test_write_read_bit_exact(self, shm_server):
        client = SMBClient.connect_local(shm_server.path)
        arr = client.create_array("w", 1 << 16)
        data = np.random.default_rng(7).random(1 << 16).astype(np.float32)
        arr.write(data)
        assert np.array_equal(arr.read(), data)
        client.close()

    def test_bit_exact_across_transports_shared_core(self, tmp_path):
        """One memory pool, two doorways: shm writes, TCP reads."""
        with TcpSMBServer(capacity=1 << 24) as tcp_server:
            with ShmSMBServer(
                tmp_path / "smb.sock", core=tcp_server.core
            ) as shm_srv:
                local = SMBClient.connect_local(shm_srv.path)
                remote = SMBClient.connect(tcp_server.address)
                arr = local.create_array("w", 1 << 14)
                data = np.random.default_rng(11).random(1 << 14)
                data = data.astype(np.float32)
                arr.write(data)
                view = remote.attach_array("w", arr.shm_key, 1 << 14)
                assert np.array_equal(view.read(), data)
                # And the reverse direction.
                reply = np.flip(data).copy()
                view.write(reply)
                assert np.array_equal(arr.read(), reply)
                local.close()
                remote.close()

    def test_accumulate_float64(self, shm_server):
        client = SMBClient.connect_local(shm_server.path)
        target = client.create_array("w", 4096, dtype="float64")
        delta = client.create_array("d", 4096, dtype="float64")
        base = np.linspace(0, 1, 4096, dtype=np.float64)
        step = np.linspace(5, 6, 4096, dtype=np.float64)
        target.write(base)
        delta.write(step)
        delta.accumulate_into(target, scale=0.25)
        assert np.allclose(target.read(), base + 0.25 * step)
        client.close()


class TestBlockGrowth:
    def test_client_requested_growth(self, tmp_path):
        """Requests bigger than the initial block trigger a grow."""
        with ShmSMBServer(
            tmp_path / "smb.sock", capacity=1 << 24, block_size=4096
        ) as server:
            client = SMBClient.connect_local(server.path)
            count = 1 << 18  # 1 MiB >> 4 KiB initial block
            arr = client.create_array("big", count)
            data = np.random.default_rng(3).random(count).astype(np.float32)
            arr.write(data)
            assert np.array_equal(arr.read(), data)
            client.close()

    def test_server_initiated_growth_for_large_response(self, tmp_path):
        """A response body that outgrows the block switches blocks."""
        tiny = DATA_OFFSET + 192
        with ShmSMBServer(
            tmp_path / "smb.sock", capacity=1 << 24, block_size=tiny
        ) as server:
            client = SMBClient.connect_local(server.path)
            for index in range(8):
                client.create_array(f"segment-with-a-long-name-{index}", 16)
            listing = client.list_segments()
            assert len(listing["segments"]) >= 8
            client.close()


class TestWaitAndShutdown:
    def test_wait_update_runs_off_the_data_path(self, shm_server):
        client = SMBClient.connect_local(shm_server.path)
        arr = client.create_array("w", 256)
        arr.write(np.zeros(256, dtype=np.float32))
        version = arr.version()
        woke = threading.Event()

        def waiter():
            arr.wait_update(version, timeout=10.0)
            woke.set()

        thread = threading.Thread(target=waiter)
        thread.start()
        # The data path must stay responsive while the wait is parked.
        delta = client.create_array("d", 256)
        delta.write(np.ones(256, dtype=np.float32))
        delta.accumulate_into(arr)
        assert woke.wait(timeout=5.0)
        thread.join(timeout=5.0)
        client.close()

    def test_shutdown_stops_server(self, tmp_path):
        server = ShmSMBServer(tmp_path / "smb.sock", capacity=1 << 22)
        server.start()
        client = SMBClient.connect_local(server.path)
        other = SMBClient.connect_local(server.path)
        arr = client.create_array("w", 64)
        client.shutdown_server()
        # Teardown of the *other* connection is asynchronous (a helper
        # thread runs stop()); poll until it is observed.
        deadline = time.monotonic() + 5.0
        with pytest.raises(SMBError):
            while time.monotonic() < deadline:
                other.attach_array("w", arr.shm_key, 64)
                time.sleep(0.05)
        client.close()
        other.close()
        server.stop()  # idempotent

    def test_concurrent_clients(self, shm_server):
        boot = SMBClient.connect_local(shm_server.path)
        target = boot.create_array("w", 1024)
        target.write(np.zeros(1024, dtype=np.float32))
        errors = []

        def worker(index):
            try:
                client = SMBClient.connect_local(shm_server.path)
                view = client.attach_array("w", target.shm_key, 1024)
                delta = client.create_array(f"d{index}", 1024)
                delta.write(np.ones(1024, dtype=np.float32))
                for _ in range(5):
                    delta.accumulate_into(view)
                client.close()
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert not errors
        assert np.array_equal(
            target.read(), np.full(1024, 40, dtype=np.float32)
        )
        boot.close()
