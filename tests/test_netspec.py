"""Tests for net specs and allocation-free shape/parameter inference."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.caffe.layers import LayerError
from repro.caffe.net import Net
from repro.caffe.netspec import NetSpec, infer


def small_spec(batch=2, channels=3, size=8, classes=4):
    spec = NetSpec("small")
    data = spec.input("data", (batch, channels, size, size))
    labels = spec.input("label", (batch,))
    top = spec.conv_relu("conv1", data, 6, kernel=3, pad=1)
    top = spec.pool("pool1", top, method="max", kernel=2, stride=2)
    top = spec.conv_bn_relu("conv2", top, 8, kernel=3, pad=1)
    top = spec.pool("gp", top, method="ave", global_pool=True)
    logits = spec.fc("fc", top, classes)
    spec.softmax_loss("loss", logits, labels)
    spec.accuracy("acc", logits, labels)
    return spec


class TestNetSpec:
    def test_default_top_is_layer_name(self):
        spec = NetSpec()
        tops = spec.add("Input", "data", shape=(1, 3, 4, 4))
        assert tops == ["data"]

    def test_duplicate_layer_name_rejected(self):
        spec = NetSpec()
        spec.input("data", (1, 3, 4, 4))
        with pytest.raises(LayerError):
            spec.input("data", (1, 3, 4, 4))

    def test_sugar_wires_bottoms(self):
        spec = small_spec()
        by_name = {layer.name: layer for layer in spec.layers}
        assert by_name["conv1_relu"].bottoms == ["conv1"]
        assert by_name["pool1"].bottoms == ["conv1_relu"]


class TestInference:
    def test_blob_shapes(self):
        result = infer(small_spec())
        assert result.blob_shapes["conv1"] == (2, 6, 8, 8)
        assert result.blob_shapes["pool1"] == (2, 6, 4, 4)
        assert result.blob_shapes["fc"] == (2, 4)
        assert result.blob_shapes["loss"] == (1,)

    def test_param_count_matches_instantiated_net(self):
        spec = small_spec()
        assert infer(spec).param_count == Net(spec, seed=0).param_count()

    def test_blob_shapes_match_instantiated_net(self):
        spec = small_spec()
        result = infer(spec)
        net = Net(spec, seed=0)
        for name, shape in net.blob_shapes.items():
            assert result.blob_shapes[name] == shape

    def test_undefined_bottom_rejected(self):
        spec = NetSpec()
        spec.add("ReLU", "r", ["ghost"])
        with pytest.raises(LayerError, match="undefined blob"):
            infer(spec)

    def test_unknown_type_rejected(self):
        spec = NetSpec()
        spec.add("Quantum", "q")
        with pytest.raises(LayerError, match="no shape rule"):
            infer(spec)

    def test_geometry_errors_surface(self):
        spec = NetSpec()
        data = spec.input("data", (1, 3, 4, 4))
        spec.conv("c", data, 8, kernel=9)  # kernel larger than image
        with pytest.raises(LayerError):
            infer(spec)

    def test_param_nbytes_is_float32(self):
        result = infer(small_spec())
        assert result.param_nbytes == result.param_count * 4

    def test_rectangular_conv_params(self):
        spec = NetSpec()
        data = spec.input("data", (1, 8, 9, 9))
        spec.conv("c", data, 16, kernel=(1, 7), pad=(0, 3), bias=False)
        result = infer(spec)
        assert result.param_shapes["c"] == [(16, 8, 1, 7)]
        assert result.blob_shapes["c"] == (1, 16, 9, 9)


@settings(max_examples=20, deadline=None)
@given(
    channels=st.integers(1, 6),
    num_output=st.integers(1, 8),
    kernel=st.integers(1, 3),
    with_bn=st.booleans(),
    with_fc=st.booleans(),
)
def test_inference_always_agrees_with_instantiation(
    channels, num_output, kernel, with_bn, with_fc
):
    """For random small specs, infer() == the real net, exactly."""
    spec = NetSpec("prop")
    data = spec.input("data", (2, channels, 6, 6))
    labels = spec.input("label", (2,))
    pad = kernel // 2
    if with_bn:
        top = spec.conv_bn_relu("c", data, num_output, kernel=kernel, pad=pad)
    else:
        top = spec.conv_relu("c", data, num_output, kernel=kernel, pad=pad)
    top = spec.pool("gp", top, method="ave", global_pool=True)
    if with_fc:
        top = spec.fc("mid", top, 5)
    logits = spec.fc("fc", top, 3)
    spec.softmax_loss("loss", logits, labels)

    result = infer(spec)
    net = Net(spec, seed=0)
    assert result.param_count == net.param_count()
    for name, shape in net.blob_shapes.items():
        assert result.blob_shapes[name] == tuple(shape)
