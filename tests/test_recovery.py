"""SMB server durability + coordinated checkpoint/restart.

The recovery layer has three tiers, each pinned here:

* **server durability** — a journaled :class:`SMBServer` survives losing
  its own process: versioned snapshots plus an append-only op journal
  rehydrate buffers, the SHM-key table, versions and the recovery epoch;
* **client re-attach** — a :class:`TcpSMBServer` restarted from its
  journal lands on a new port; clients re-resolve it through the
  rendezvous file within their grace window and transparently re-mint
  access keys (SHM keys are stable identity, access keys die with the
  server process);
* **job checkpoint/restart** — coordinated checkpoints (``W_g`` + every
  rank's solver state + ``Iter_x``) let a run resume bit-exactly, even
  against the *recovered* server that still holds its old segments.

Mid-run server-kill drills carry the ``chaos`` marker (thread timing
decides where within an iteration the kill lands); everything else is
fully deterministic.
"""

import json
import threading
import time

import numpy as np
import pytest

from repro import telemetry
from repro.caffe import SolverConfig
from repro.core import (
    CheckpointError,
    DistributedTrainingManager,
    ShmCaffeConfig,
    TerminationCriterion,
    inspect_checkpoint,
    latest_checkpoint,
)
from repro.experiments.recovery import (
    build_manager,
    job_metadata,
    run_server_loss_drill,
)
from repro.smb import (
    RetryPolicy,
    SMBClient,
    SMBError,
    SMBServer,
    TcpSMBServer,
    UnknownKeyError,
    read_rendezvous,
)
from repro.smb.journal import RENDEZVOUS_NAME
from repro.smb.transport import TcpTransport

from .test_engine_equivalence import golden_dataset
from .test_netspec import small_spec

#: In-flight requests die with the server's connections; the retry layer
#: re-issues them, and reconnection rides the grace window.
RECOVERY_RETRY = RetryPolicy(
    max_attempts=8, base_backoff=0.02, max_backoff=0.2, seed=7
)


# ---------------------------------------------------------------------------
# Server durability: journal directory -> crash -> rehydrated pool
# ---------------------------------------------------------------------------


class TestServerDurability:
    def _crash(self, server):
        """Die without close(): no final snapshot, like SIGKILL."""
        if server._store is not None:
            server._store.close()

    def test_crash_recovery_preserves_segments(self, tmp_path):
        first = SMBServer(capacity=1 << 20, journal_dir=tmp_path)
        with SMBClient.in_process(first) as client:
            shm = client.create_buffer("weights", 16)
            key = client.attach(shm)
            client.write(key, np.arange(4, dtype=np.float32))
            scratch = client.create_buffer("delta", 16)
            dkey = client.attach(scratch)
            client.write(dkey, np.ones(4, dtype=np.float32))
            client.accumulate(key, dkey, count=4, scale=2.0)
        self._crash(first)

        second = SMBServer(capacity=1 << 20, journal_dir=tmp_path)
        segment = second.pool.by_name("weights")
        np.testing.assert_array_equal(
            segment.buffer.view(np.float32),
            np.arange(4, dtype=np.float32) + 2.0,
        )
        assert segment.shm_key == shm  # SHM keys are stable identity
        assert segment.version == 2  # one write + one accumulate
        assert second.epoch == 1

    def test_stale_access_key_rejected_after_recovery(self, tmp_path):
        first = SMBServer(capacity=1 << 20, journal_dir=tmp_path)
        with SMBClient.in_process(first) as client:
            shm = client.create_buffer("buf", 8)
            stale = client.attach(shm)
        self._crash(first)

        second = SMBServer(capacity=1 << 20, journal_dir=tmp_path)
        with pytest.raises(UnknownKeyError):
            second.pool.by_access_key(stale)
        # Re-attaching by the stable SHM key mints a fresh access key.
        fresh = second.pool.attach(shm, 8)
        assert second.pool.by_access_key(fresh).name == "buf"

    def test_recovered_access_keys_never_collide_with_stale_ones(
        self, tmp_path
    ):
        """Regression: attaches are not journaled, so the recovered pool
        must not re-mint keys a dead life handed out — a stale key that
        *resolves* (to the wrong segment) is far worse than one that
        raises UnknownKeyError."""
        first = SMBServer(capacity=1 << 20, journal_dir=tmp_path)
        with SMBClient.in_process(first) as client:
            shm = client.create_buffer("buf", 8)
        stale = {first.pool.attach(shm) for _ in range(32)}
        self._crash(first)

        second = SMBServer(capacity=1 << 20, journal_dir=tmp_path)
        fresh = {second.pool.attach(shm) for _ in range(32)}
        assert not (stale & fresh)

    def test_snapshot_only_mode_loses_post_snapshot_ops(self, tmp_path):
        """journal_ops=False trades the per-op append for a bounded
        lost-delta window: everything after the last snapshot is gone."""
        first = SMBServer(
            capacity=1 << 20, journal_dir=tmp_path, journal_ops=False
        )
        shm = first.pool.create("buf", 8).shm_key
        first.take_snapshot()  # segment now durable
        key = first.pool.attach(shm)
        first.pool.by_access_key(key).write(0, b"\x07" * 8)  # ...this isn't
        self._crash(first)

        second = SMBServer(
            capacity=1 << 20, journal_dir=tmp_path, journal_ops=False
        )
        segment = second.pool.by_name("buf")
        assert bytes(segment.buffer) == b"\x00" * 8

    def test_clean_close_is_lossless_in_snapshot_only_mode(self, tmp_path):
        first = SMBServer(
            capacity=1 << 20, journal_dir=tmp_path, journal_ops=False
        )
        shm = first.pool.create("buf", 8).shm_key
        key = first.pool.attach(shm)
        first.pool.by_access_key(key).write(0, b"\x07" * 8)
        first.close()  # writes the final snapshot

        second = SMBServer(
            capacity=1 << 20, journal_dir=tmp_path, journal_ops=False
        )
        assert bytes(second.pool.by_name("buf").buffer) == b"\x07" * 8

    def test_snapshot_op_forces_durability(self, tmp_path):
        server = SMBServer(capacity=1 << 20, journal_dir=tmp_path)
        with SMBClient.in_process(server) as client:
            seq, epoch = client.request_snapshot()
        assert seq >= 1
        assert epoch == 0
        assert (tmp_path / f"snapshot-{seq:08d}.npz").exists()

    def test_snapshot_op_requires_journal_dir(self):
        server = SMBServer(capacity=1 << 20)
        with SMBClient.in_process(server) as client:
            with pytest.raises(SMBError, match="journal"):
                client.request_snapshot()


# ---------------------------------------------------------------------------
# Client re-attach: new server process, new port, rendezvous file
# ---------------------------------------------------------------------------


@pytest.mark.chaos
class TestClientReattach:
    def test_reattach_to_new_server_process(self, tmp_path):
        """The full handshake path: the replacement server is a NEW
        process-equivalent (fresh TcpSMBServer, fresh ephemeral port);
        the client finds it through the rendezvous file, re-HELLOs, and
        re-mints access keys for every held segment."""
        first = TcpSMBServer(
            port=0, capacity=1 << 20, journal_dir=tmp_path
        ).start()
        rendezvous = str(tmp_path / RENDEZVOUS_NAME)
        client = SMBClient.connect(
            first.address, retry_policy=RECOVERY_RETRY,
            rendezvous=rendezvous, server_down_grace=20.0,
        )
        array = client.create_array("weights", 8)
        array.write(np.arange(8, dtype=np.float32))
        assert client.server_epoch == 0

        first.kill()
        second = TcpSMBServer(
            port=0, capacity=1 << 20, journal_dir=tmp_path
        ).start()
        try:
            assert second.address != first.address
            assert read_rendezvous(rendezvous) == second.address

            # Reads and writes continue transparently across the restart.
            np.testing.assert_array_equal(
                array.read(), np.arange(8, dtype=np.float32)
            )
            array.write(np.full(8, 5.0, dtype=np.float32))
            np.testing.assert_array_equal(
                array.read(), np.full(8, 5.0, dtype=np.float32)
            )
            assert client.reattachments >= 1
            assert client.server_epoch == 1
        finally:
            client.close()
            second.stop()

    def test_grace_window_expires_into_connection_error(self, tmp_path):
        server = TcpSMBServer(
            port=0, capacity=1 << 20, journal_dir=tmp_path
        ).start()
        client = SMBClient.connect(
            server.address,
            rendezvous=str(tmp_path / RENDEZVOUS_NAME),
            server_down_grace=0.3,
        )
        array = client.create_array("w", 4)
        server.kill()  # and never comes back
        with pytest.raises(SMBError):
            array.read()
        client.close()

    def test_reconnect_waits_out_an_outage(self, tmp_path):
        """A request issued while the server is down blocks inside the
        grace window and completes once the replacement publishes the
        rendezvous file."""
        first = TcpSMBServer(
            port=0, capacity=1 << 20, journal_dir=tmp_path
        ).start()
        client = SMBClient.connect(
            first.address,
            retry_policy=RECOVERY_RETRY,
            rendezvous=str(tmp_path / RENDEZVOUS_NAME),
            server_down_grace=30.0,
        )
        array = client.create_array("w", 4)
        array.write(np.ones(4, dtype=np.float32))
        first.kill()

        replacement = {}

        def restart():
            time.sleep(0.5)
            replacement["server"] = TcpSMBServer(
                port=0, capacity=1 << 20, journal_dir=tmp_path
            ).start()

        thread = threading.Thread(target=restart, daemon=True)
        thread.start()
        try:
            np.testing.assert_array_equal(
                array.read(), np.ones(4, dtype=np.float32)
            )
        finally:
            thread.join()
            client.close()
            replacement["server"].stop()


# ---------------------------------------------------------------------------
# Coordinated checkpoints: save, inspect, resume
# ---------------------------------------------------------------------------


def checkpoint_job(
    checkpoint_dir=None,
    checkpoint_every=0,
    resume=None,
    iterations=10,
    num_workers=1,
    server_address=None,
    rendezvous=None,
    grace=0.0,
):
    """The seeded 1-worker job the bit-exact resume goldens use."""
    config = ShmCaffeConfig(
        solver=SolverConfig(base_lr=0.05, momentum=0.9),
        moving_rate=0.2,
        update_interval=1,
        max_iterations=iterations,
        termination=TerminationCriterion.MASTER_STOP,
        overlap_updates=False,
    )
    manager = DistributedTrainingManager(
        spec_factory=lambda: small_spec(batch=4),
        config=config,
        dataset=golden_dataset(),
        batch_size=4,
        num_workers=num_workers,
        seed=3,
        server_address=server_address,
        rendezvous=rendezvous,
        server_down_grace=grace,
        checkpoint_dir=(
            None if checkpoint_dir is None else str(checkpoint_dir)
        ),
        checkpoint_every=checkpoint_every,
        resume=None if resume is None else str(resume),
    )
    return manager.run(timeout=300)


class TestCheckpointResume:
    def test_resume_is_bit_exact(self, tmp_path):
        """interrupt at 5 + resume to 10 == uninterrupted 10, bit for bit
        (weights, momentum, RNG stream, dataset cursor all restored)."""
        reference = checkpoint_job(iterations=10)

        ckpt = tmp_path / "ckpt"
        first = checkpoint_job(
            checkpoint_dir=ckpt, checkpoint_every=5, iterations=5
        )
        second = checkpoint_job(resume=ckpt, iterations=10)

        resumed_losses = (
            first.histories[0].losses + second.histories[0].losses
        )
        assert resumed_losses == reference.histories[0].losses
        np.testing.assert_array_equal(
            second.final_global_weights, reference.final_global_weights
        )

    def test_manifest_records_the_boundary(self, tmp_path):
        ckpt = tmp_path / "ckpt"
        checkpoint_job(checkpoint_dir=ckpt, checkpoint_every=2, iterations=6)
        info = latest_checkpoint(ckpt)
        assert info is not None
        assert (info.seq, info.iteration) == (3, 6)
        assert info.num_workers == 1
        assert info.rank_state_path(0).exists()
        assert info.global_path.exists()

    def test_incomplete_generation_is_invisible(self, tmp_path):
        ckpt = tmp_path / "ckpt"
        checkpoint_job(checkpoint_dir=ckpt, checkpoint_every=5, iterations=5)
        # A crash mid-checkpoint leaves rank states but no manifest.
        partial = ckpt / "seq-00000009"
        partial.mkdir()
        (partial / "rank0000.state.npz").write_bytes(b"torn write")
        info = latest_checkpoint(ckpt)
        assert info is not None and info.seq == 1
        report = inspect_checkpoint(ckpt)
        by_path = {entry["path"]: entry for entry in report["generations"]}
        assert by_path[str(partial)]["complete"] is False
        assert report["latest"]["seq"] == 1

    def test_resume_rejects_worker_count_mismatch(self, tmp_path):
        ckpt = tmp_path / "ckpt"
        checkpoint_job(checkpoint_dir=ckpt, checkpoint_every=5, iterations=5)
        with pytest.raises(CheckpointError, match="worker"):
            checkpoint_job(resume=ckpt, iterations=10, num_workers=2)

    def test_resume_requires_a_checkpoint(self, tmp_path):
        with pytest.raises(CheckpointError, match="no complete checkpoint"):
            checkpoint_job(resume=tmp_path / "nothing", iterations=10)

    def test_checkpoint_validation(self, tmp_path):
        with pytest.raises(ValueError, match="checkpoint_every"):
            checkpoint_job(checkpoint_dir=tmp_path, checkpoint_every=0)
        config = ShmCaffeConfig(
            solver=SolverConfig(), max_iterations=2,
        )
        with pytest.raises(ValueError, match="group_size"):
            DistributedTrainingManager(
                spec_factory=lambda: small_spec(batch=4),
                config=config,
                dataset=golden_dataset(),
                batch_size=4,
                num_workers=2,
                group_size=2,
                checkpoint_dir=str(tmp_path),
                checkpoint_every=1,
            )


class TestMetadataJobs:
    def test_build_manager_round_trips_metadata(self, tmp_path):
        metadata = job_metadata(
            num_workers=1, max_iterations=4, checkpoint_every=2, seed=9
        )
        # Survives a JSON round trip, like a manifest on disk.
        metadata = json.loads(json.dumps(metadata))
        manager = build_manager(metadata, checkpoint_dir=tmp_path / "ckpt")
        result = manager.run(timeout=300)
        assert result.histories[0].completed_iterations == 4
        info = latest_checkpoint(tmp_path / "ckpt")
        assert info is not None and info.iteration == 4
        assert info.metadata["seed"] == 9

        resumed = build_manager(
            info.metadata, resume=tmp_path / "ckpt", max_iterations=6
        )
        final = resumed.run(timeout=300)
        assert final.histories[0].completed_iterations == 6

    def test_foreign_metadata_rejected(self):
        with pytest.raises(ValueError, match="job"):
            build_manager({"job": "something-else"})


# ---------------------------------------------------------------------------
# The tentpole drills: lose the parameter box itself
# ---------------------------------------------------------------------------


@pytest.mark.chaos
class TestServerLossRecovery:
    def test_resume_against_recovered_server_is_bit_exact(self, tmp_path):
        """Kill lands on a checkpoint boundary: leg 1 finishes at its
        target, the server dies without a clean shutdown, a replacement
        recovers from the journal, and the resumed leg — adopting the
        *surviving* segments on the recovered server — reproduces the
        uninterrupted trajectory bit for bit."""
        reference = checkpoint_job(iterations=10)

        journal = tmp_path / "journal"
        ckpt = tmp_path / "ckpt"
        first_server = TcpSMBServer(
            port=0, capacity=1 << 22, journal_dir=journal
        ).start()
        first = checkpoint_job(
            checkpoint_dir=ckpt, checkpoint_every=5, iterations=5,
            server_address=first_server.address,
        )
        first_server.kill()  # no clean-shutdown snapshot: journal replay

        second_server = TcpSMBServer(
            port=0, capacity=1 << 22, journal_dir=journal
        ).start()
        try:
            assert second_server.core.epoch == 1
            # The run's segments survived on the recovered server...
            w_g = second_server.core.pool.by_name("W_g")
            info = latest_checkpoint(ckpt)
            np.testing.assert_array_equal(
                w_g.buffer.view(np.float32), info.load_global_weights()
            )
            # ...and the resumed leg reclaims them instead of failing
            # its CREATEs.
            second = checkpoint_job(
                resume=ckpt, iterations=10,
                server_address=second_server.address,
            )
        finally:
            second_server.stop()

        resumed_losses = (
            first.histories[0].losses + second.histories[0].losses
        )
        assert resumed_losses == reference.histories[0].losses
        np.testing.assert_array_equal(
            second.final_global_weights, reference.final_global_weights
        )

    def test_midrun_server_kill_drill(self, tmp_path):
        """The seeded end-to-end drill: kill -9 the server once the
        fleet sealed the iteration-4 checkpoint, restart it from the
        journal on a fresh port, and require every worker to re-attach
        within its grace window and finish."""
        with telemetry.session("metrics") as tel:
            report = run_server_loss_drill(
                tmp_path,
                num_workers=2,
                iterations=10,
                checkpoint_every=2,
                kill_at_iteration=4,
                outage=0.2,
                grace=60.0,
                seed=0,
                telemetry=tel,
            )
        assert report.completed, report.result.failed_ranks
        assert report.result.failed_ranks == []
        assert report.recoveries == 1
        assert report.recovered_epoch == 1
        assert report.reattachments >= 1
        assert report.new_address != report.old_address
        master = report.result.histories[0]
        assert master.completed_iterations == 10
        assert np.isfinite(master.losses[-1])
        # The journal bounds the lost work: the recovered trajectory
        # stays in the same loss regime as an undisturbed run.
        undisturbed = checkpoint_job(iterations=10)
        assert abs(
            master.losses[-1] - undisturbed.histories[0].losses[-1]
        ) < 1.0


class TestRendezvousTransport:
    def test_static_address_still_works(self):
        with TcpSMBServer(port=0, capacity=1 << 20) as server:
            transport = TcpTransport(server.address)
            client = SMBClient(transport)
            key = client.create_buffer("x", 8)
            assert client.lookup("x") == (key, 8)
            client.close()
