"""Event-loop front-end: lifecycle, dispatch and accounting regressions.

The selector rewrite of :class:`TcpSMBServer` changed how connections are
owned (one loop thread + a bounded worker pool instead of a thread per
client).  These tests pin the behaviours the rewrite fixed:

* ``stop()`` returns with **zero** live handler threads, idle
  connections included (the threaded server closed only the listener and
  left handlers parked in ``recv`` forever);
* a ``SHUTDOWN`` from one client unblocks every *other* connected
  client promptly;
* ``STATS`` and ``LIST`` are themselves counted in the server stats;
* ACCUMULATE byte accounting and arithmetic honour the element dtype
  (the old path hardcoded 4-byte float32 everywhere, so a float64
  accumulate was both miscounted and numerically wrong);
* journal replay of a dtype-carrying ACCUMULATE restores bit-exact
  state.
"""

import socket
import struct
import threading
import time

import numpy as np
import pytest

from repro.smb import SMBClient, TcpSMBServer
from repro.smb.errors import NotificationTimeout, SMBError
from repro.smb.protocol import (
    HEADER_FORMAT,
    HEADER_SIZE,
    HELLO,
    Message,
    Op,
    Status,
)


def _raw_connect(address):
    """A bare protocol connection, bypassing SMBClient (and its
    client-side wait slicing / retry machinery)."""
    sock = socket.create_connection(address, timeout=10.0)
    sock.sendall(HELLO)
    return sock


def _raw_recv_exact(sock, n):
    data = bytearray()
    while len(data) < n:
        chunk = sock.recv(n - len(data))
        if not chunk:
            raise ConnectionError("server closed the connection")
        data.extend(chunk)
    return bytes(data)


def _raw_response(sock):
    header = _raw_recv_exact(sock, HEADER_SIZE)
    paylen = struct.unpack(HEADER_FORMAT, header)[-1]
    payload = _raw_recv_exact(sock, paylen) if paylen else b""
    return Message.decode(header, payload)


def _smb_threads():
    return [
        t for t in threading.enumerate()
        if t.is_alive() and t.name.startswith(("smb-loop", "smb-worker"))
    ]


class TestServerLifecycle:
    def test_stop_leaves_zero_handler_threads(self):
        before = set(map(id, _smb_threads()))
        server = TcpSMBServer(capacity=1 << 22).start()
        clients = [SMBClient.connect(server.address) for _ in range(4)]
        arr = clients[0].create_array("w", 256)
        arr.write(np.arange(256, dtype=np.float32))
        # Three clients stay connected but idle — the regression case.
        server.stop()
        leftover = [t for t in _smb_threads() if id(t) not in before]
        assert leftover == [], f"threads survived stop(): {leftover}"
        for client in clients:
            client.close()

    def test_stop_severs_idle_connections(self):
        server = TcpSMBServer(capacity=1 << 22).start()
        active = SMBClient.connect(server.address)
        idle = SMBClient.connect(server.address)
        arr = active.create_array("w", 64)
        start = time.monotonic()
        server.stop()
        assert time.monotonic() - start < 5.0
        with pytest.raises(SMBError):
            idle.attach_array("w", arr.shm_key, 64)
        active.close()
        idle.close()

    def test_shutdown_unblocks_peer_connections(self):
        server = TcpSMBServer(capacity=1 << 22).start()
        first = SMBClient.connect(server.address)
        second = SMBClient.connect(server.address)
        arr = first.create_array("w", 64)
        view = second.attach_array("w", arr.shm_key, 64)
        unblocked = threading.Event()

        def parked_wait():
            try:
                view.wait_update(view.version(), timeout=30.0)
            except Exception:
                pass
            finally:
                unblocked.set()

        waiter = threading.Thread(target=parked_wait)
        waiter.start()
        time.sleep(0.2)  # let the wait park server-side
        first.shutdown_server()
        assert unblocked.wait(timeout=5.0), (
            "peer stayed blocked after another client's SHUTDOWN"
        )
        waiter.join(timeout=5.0)
        server.stop()  # idempotent after client-driven shutdown
        first.close()
        second.close()

    def test_stop_is_idempotent(self):
        server = TcpSMBServer(capacity=1 << 22).start()
        server.stop()
        server.stop()

    def test_many_concurrent_clients(self):
        """A small fleet through the one loop thread, all correct."""
        fleet = 16
        with TcpSMBServer(capacity=1 << 24) as server:
            boot = SMBClient.connect(server.address)
            target = boot.create_array("w", 1024)
            target.write(np.zeros(1024, dtype=np.float32))
            errors = []

            def worker(index):
                try:
                    client = SMBClient.connect(server.address)
                    view = client.attach_array("w", target.shm_key, 1024)
                    delta = client.create_array(f"d{index}", 1024)
                    delta.write(np.ones(1024, dtype=np.float32))
                    for _ in range(5):
                        delta.accumulate_into(view)
                    client.close()
                except Exception as exc:  # pragma: no cover - diagnostic
                    errors.append(exc)

            threads = [
                threading.Thread(target=worker, args=(i,))
                for i in range(fleet)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30)
            assert not errors
            result = target.read()
            assert np.array_equal(
                result, np.full(1024, fleet * 5, dtype=np.float32)
            )
            boot.close()


class TestEventStyleWaits:
    """WAIT_UPDATE must never occupy a worker-pool thread while parked.

    The regression: offloaded waits pinned their pool thread for the
    whole wait, so enough concurrent untimed waits exhausted the pool
    and the ACCUMULATE that would have woken them queued behind them
    forever — a server-wide deadlock.
    """

    def test_parked_waits_do_not_exhaust_worker_pool(self):
        server = TcpSMBServer(capacity=1 << 22, workers=2).start()
        socks = []
        try:
            boot = SMBClient.connect(server.address)
            target = boot.create_array("w", 256)
            delta = boot.create_array("d", 256)
            target.write(np.zeros(256, dtype=np.float32))
            delta.write(np.ones(256, dtype=np.float32))
            version = target.version()
            # Six *untimed* raw waits against a two-thread pool: under
            # the old design the first two pin both pool threads forever
            # and the accumulate below can never run.
            for _ in range(6):
                sock = _raw_connect(server.address)
                sock.sendall(Message(
                    op=Op.WAIT_UPDATE, key=target.access_key,
                    count=version, scale=0.0,
                ).encode())
                socks.append(sock)
            time.sleep(0.3)  # let every wait park server-side
            done = threading.Event()

            def push():
                delta.accumulate_into(target)
                done.set()

            threading.Thread(target=push, daemon=True).start()
            assert done.wait(timeout=10.0), (
                "ACCUMULATE starved behind parked waits (pool exhausted)"
            )
            for sock in socks:
                response = _raw_response(sock)
                assert response.status is Status.OK
                assert response.count > version
            boot.close()
        finally:
            for sock in socks:
                sock.close()
            server.stop()

    def test_raw_timed_wait_expires_server_side(self):
        with TcpSMBServer(capacity=1 << 22) as server:
            client = SMBClient.connect(server.address)
            arr = client.create_array("w", 64)
            sock = _raw_connect(server.address)
            start = time.monotonic()
            sock.sendall(Message(
                op=Op.WAIT_UPDATE, key=arr.access_key,
                count=arr.version(), scale=0.3,
            ).encode())
            response = _raw_response(sock)
            elapsed = time.monotonic() - start
            assert response.status is Status.TIMEOUT
            assert 0.2 <= elapsed < 5.0
            sock.close()
            client.close()

    def test_client_wait_timeout_still_raises(self):
        with TcpSMBServer(capacity=1 << 22) as server:
            client = SMBClient.connect(server.address)
            arr = client.create_array("w", 64)
            start = time.monotonic()
            with pytest.raises(NotificationTimeout):
                arr.wait_update(arr.version(), timeout=0.4)
            assert time.monotonic() - start < 5.0
            client.close()


class TestDispatchRobustness:
    def test_malformed_inline_frame_costs_one_connection(self):
        """A CREATE whose name payload is not UTF-8 raises past the
        SMBError net inside dispatch.  That must close the offending
        connection only — never crash the event loop (which used to take
        the whole server down for every client)."""
        with TcpSMBServer(capacity=1 << 22) as server:
            bad = _raw_connect(server.address)
            bad.sendall(Message(
                op=Op.CREATE, count=64, payload=b"\xff\xfe\xfd",
            ).encode())
            bad.settimeout(5.0)
            assert bad.recv(1) == b"", "expected the connection severed"
            bad.close()
            # The loop survived: a fresh client is served normally.
            client = SMBClient.connect(server.address)
            arr = client.create_array("ok", 64)
            arr.write(np.arange(64, dtype=np.float32))
            assert np.array_equal(
                arr.read(), np.arange(64, dtype=np.float32)
            )
            client.close()

    def test_mutations_offload_when_journaled(self, tmp_path):
        """With a journal configured every mutation takes the journal
        lock — which an offloaded ACCUMULATE can hold across a whole
        accumulate plus snapshot — so no mutation may run inline on the
        loop thread."""
        journaled = TcpSMBServer(
            capacity=1 << 22, journal_dir=tmp_path / "j"
        )
        plain = TcpSMBServer(capacity=1 << 22)
        try:
            mutations = [
                Message(op=Op.WRITE, key=1, payload=b"xy"),
                Message(op=Op.CREATE, count=64, payload=b"n"),
                Message(op=Op.FREE, key=1),
            ]
            for message in mutations:
                assert journaled._needs_offload(message)
                assert not plain._needs_offload(message)
        finally:
            journaled.stop()
            plain.stop()


class TestStatsAccounting:
    def test_stats_and_list_are_counted(self):
        with TcpSMBServer(capacity=1 << 22) as server:
            client = SMBClient.connect(server.address)
            client.create_array("w", 64)
            client.list_segments()
            client.list_segments()
            counters = client.stats()
            assert counters.get("LIST") == 2
            # The STATS op records itself before serialising, so the very
            # first snapshot already counts 1.
            assert counters.get("STATS") == 1
            assert client.stats().get("STATS") == 2
            client.close()

    def test_accumulate_float64_bytes_and_values(self):
        count = 1024
        with TcpSMBServer(capacity=1 << 22) as server:
            client = SMBClient.connect(server.address)
            target = client.create_array("w64", count, dtype="float64")
            delta = client.create_array("d64", count, dtype="float64")
            base = np.linspace(0.0, 1.0, count, dtype=np.float64)
            step = np.linspace(1.0, 2.0, count, dtype=np.float64)
            target.write(base)
            delta.write(step)
            written_before = client.stats()["bytes_written"]
            delta.accumulate_into(target, scale=0.5)
            written_after = client.stats()["bytes_written"]
            # 8-byte elements: the old hardcoded "* 4" undercounted by 2x.
            assert written_after - written_before == count * 8
            assert np.allclose(target.read(), base + 0.5 * step)
            client.close()

    def test_accumulate_dtype_mismatch_rejected(self):
        with TcpSMBServer(capacity=1 << 22) as server:
            client = SMBClient.connect(server.address)
            target = client.create_array("w", 64, dtype="float64")
            delta = client.create_array("d", 64, dtype="float32")
            with pytest.raises(ValueError, match="dtype mismatch"):
                delta.accumulate_into(target)
            client.close()


class TestJournalDtypeReplay:
    def test_float64_accumulate_survives_kill_and_recovery(self, tmp_path):
        count = 512
        journal_dir = tmp_path / "journal"
        server = TcpSMBServer(
            capacity=1 << 22, journal_dir=journal_dir
        ).start()
        client = SMBClient.connect(server.address)
        target = client.create_array("w", count, dtype="float64")
        delta = client.create_array("d", count, dtype="float64")
        base = np.linspace(-1.0, 1.0, count, dtype=np.float64)
        step = np.linspace(3.0, 4.0, count, dtype=np.float64)
        target.write(base)
        delta.write(step)
        delta.accumulate_into(target, scale=2.0)
        expected = base + 2.0 * step
        shm_key = target.shm_key
        client.close()
        server.kill()  # no final snapshot: recovery must replay the journal

        revived = TcpSMBServer(
            capacity=1 << 22, journal_dir=journal_dir
        ).start()
        try:
            client = SMBClient.connect(revived.address)
            view = client.attach_array("w", shm_key, count, dtype="float64")
            assert np.array_equal(view.read(), expected)
            client.close()
        finally:
            revived.stop()
