"""Consistent-hash placement and live rebalancing across an SMB fleet.

:mod:`repro.smb.placement` decides which server of a fleet hosts each
segment.  The properties that matter:

* determinism — every process derives the same home from the same fleet
  (no directory service);
* balance — virtual nodes spread load within a reasonable factor;
* minimal movement — adding one server to a K-ring moves ~1/K of the
  names, the property that makes elastic membership affordable;
* live migration — ``rebalance`` converges with create→copy→swap→free
  ordering, so an interruption leaves a duplicate, never a hole, and a
  later pass sweeps it.
"""

import numpy as np
import pytest

from repro.smb import SMBClient, SMBServer
from repro.smb.placement import (
    HashRingPlacement,
    PlacementError,
    StripedPlacement,
    attach_placed_array,
    create_placed_array,
    discover_locations,
    plan_moves,
    rebalance,
)


class TestHashRing:
    def test_deterministic_across_instances(self):
        servers = ["s0", "s1", "s2"]
        a = HashRingPlacement(servers)
        b = HashRingPlacement(list(servers))
        names = [f"seg{i}" for i in range(200)]
        assert a.locate(names) == b.locate(names)

    def test_server_order_does_not_matter(self):
        # The ring is built from hashed (server, replica) points, so the
        # registration order of the fleet is irrelevant.
        names = [f"seg{i}" for i in range(200)]
        forward = HashRingPlacement(["s0", "s1", "s2"]).locate(names)
        shuffled = HashRingPlacement(["s2", "s0", "s1"]).locate(names)
        assert forward == shuffled

    def test_load_spread_within_bounds(self):
        placement = HashRingPlacement(["s0", "s1", "s2"])
        names = [f"layer{i}.shard{j}" for i in range(500) for j in range(6)]
        counts = {server: 0 for server in placement.servers}
        for name in names:
            counts[placement.server_for(name)] += 1
        expected = len(names) / 3
        for server, count in counts.items():
            assert 0.5 * expected < count < 1.5 * expected, (
                f"{server} holds {count} of {len(names)}"
            )

    def test_adding_a_server_moves_about_one_kth(self):
        names = [f"seg{i}" for i in range(3000)]
        before = HashRingPlacement(["s0", "s1", "s2"]).locate(names)
        grown = HashRingPlacement(["s0", "s1", "s2"])
        grown.add_server("s3")
        after = grown.locate(names)
        moved = sum(1 for n in names if before[n] != after[n])
        # Ideal is 1/4; allow slack for ring variance.
        assert 0.10 * len(names) < moved < 0.45 * len(names)
        # Every move lands on the new server — nothing shuffles between
        # the old ones.
        assert all(
            after[n] == "s3" for n in names if before[n] != after[n]
        )

    def test_removing_a_server_moves_only_its_names(self):
        names = [f"seg{i}" for i in range(1000)]
        ring = HashRingPlacement(["s0", "s1", "s2"])
        before = ring.locate(names)
        ring.remove_server("s1")
        after = ring.locate(names)
        for name in names:
            if before[name] != "s1":
                assert after[name] == before[name]
            else:
                assert after[name] in ("s0", "s2")

    def test_validation(self):
        with pytest.raises(PlacementError):
            HashRingPlacement([])
        with pytest.raises(PlacementError):
            HashRingPlacement(["s0", "s0"])
        with pytest.raises(PlacementError):
            HashRingPlacement(["s0"], replicas=0)
        ring = HashRingPlacement(["s0", "s1"])
        with pytest.raises(PlacementError):
            ring.add_server("s0")
        with pytest.raises(PlacementError):
            ring.remove_server("nope")
        ring.remove_server("s1")
        with pytest.raises(PlacementError):
            ring.remove_server("s0")  # never empty the fleet


class TestStripedPlacement:
    def test_shard_suffix_picks_server(self):
        placement = StripedPlacement(["s0", "s1", "s2"])
        assert placement.server_for("w.shard0") == "s0"
        assert placement.server_for("w.shard4") == "s1"

    def test_unsuffixed_names_hash(self):
        placement = StripedPlacement(["s0", "s1"])
        assert placement.server_for("ctl") in ("s0", "s1")


def _fleet(n):
    """n in-process servers with one client each, as a placement fleet."""
    servers = {f"s{i}": SMBServer(capacity=1 << 22) for i in range(n)}
    clients = {
        sid: SMBClient.in_process(server)
        for sid, server in servers.items()
    }
    return servers, clients


class TestPlacedArrays:
    def test_create_read_write_round_trip(self):
        _, clients = _fleet(3)
        placement = HashRingPlacement(sorted(clients))
        array = create_placed_array(clients, placement, "W_g", 1000)
        values = np.arange(1000, dtype=np.float32)
        array.write(values)
        np.testing.assert_array_equal(array.read(), values)
        # Each stripe really lives where the policy says.
        locations = discover_locations(clients)
        for index in range(array.num_shards):
            name = f"W_g.shard{index}"
            assert list(locations[name]) == [placement.server_for(name)]

    def test_attach_resolves_homes_via_policy(self):
        _, clients = _fleet(2)
        placement = HashRingPlacement(sorted(clients))
        created = create_placed_array(clients, placement, "W_g", 64)
        created.write(np.ones(64, dtype=np.float32))
        view = attach_placed_array(
            clients, placement, "W_g", created.shm_keys, 64
        )
        np.testing.assert_array_equal(
            view.read(), np.ones(64, dtype=np.float32)
        )

    def test_missing_client_is_an_error(self):
        _, clients = _fleet(2)
        placement = HashRingPlacement(["s0", "s1", "ghost"])
        with pytest.raises(PlacementError):
            create_placed_array(clients, placement, "W_g", 64)


class TestRebalance:
    def test_plan_moves_only_misplaced(self):
        placement = HashRingPlacement(["s0", "s1"])
        names = [f"seg{i}" for i in range(20)]
        correct = placement.locate(names)
        locations = dict(correct)
        displaced = names[:4]
        for name in displaced:  # scatter a few to the wrong server
            locations[name] = "s1" if correct[name] == "s0" else "s0"
        moves = plan_moves(locations, placement)
        assert sorted(m.name for m in moves) == sorted(displaced)
        for move in moves:
            assert move.target == correct[move.name]

    def test_rebalance_converges_after_fleet_growth(self):
        _, clients = _fleet(3)
        two = HashRingPlacement(["s0", "s1"])
        seeds = {}
        for i in range(12):
            name = f"seg{i}"
            data = np.full(16, float(i), dtype=np.float32)
            clients[two.server_for(name)].create_array(name, 16).write(data)
            seeds[name] = data
        three = HashRingPlacement(["s0", "s1"])
        three.add_server("s2")
        moves = rebalance(clients, three)
        assert all(m.target == "s2" for m in moves)
        # Converged: every segment on its placement home, bytes intact.
        locations = discover_locations(clients)
        for name, data in seeds.items():
            home = three.server_for(name)
            assert list(locations[name]) == [home]
            shm_key, nbytes = clients[home].lookup(name)
            view = clients[home].attach_array(name, shm_key, 16)
            np.testing.assert_array_equal(view.read(), data)
        # Idempotent: a second pass finds nothing to do.
        assert rebalance(clients, three) == []

    def test_rebalance_sweeps_duplicates_from_interrupted_migration(self):
        _, clients = _fleet(2)
        placement = HashRingPlacement(["s0", "s1"])
        name = "seg0"
        home = placement.server_for(name)
        other = "s1" if home == "s0" else "s0"
        # Simulate a crash after copy but before the source free: the
        # same name exists on both servers, target copy authoritative.
        good = np.arange(16, dtype=np.float32)
        clients[home].create_array(name, 16).write(good)
        clients[other].create_array(name, 16).write(np.zeros(16, np.float32))
        moves = rebalance(clients, placement)
        assert moves == []  # a sweep, not a transfer
        locations = discover_locations(clients)
        assert list(locations[name]) == [home]
        shm_key, _ = clients[home].lookup(name)
        np.testing.assert_array_equal(
            clients[home].attach_array(name, shm_key, 16).read(), good
        )

    def test_rebalance_requires_clients_for_the_whole_fleet(self):
        _, clients = _fleet(1)
        placement = HashRingPlacement(["s0", "ghost"])
        with pytest.raises(PlacementError):
            rebalance(clients, placement)

    def test_lock_factory_is_entered_per_segment(self):
        _, clients = _fleet(2)
        placement = HashRingPlacement(["s0", "s1"])
        # Force two migrations.
        wrong = {"s0": "s1", "s1": "s0"}
        created = 0
        for i in range(40):
            name = f"seg{i}"
            clients[wrong[placement.server_for(name)]].create_array(
                name, 8
            ).write(np.zeros(8, np.float32))
            created += 1
            if created == 2:
                break
        entries = []

        class Guard:
            def __enter__(self):
                entries.append("in")
                return self

            def __exit__(self, *exc):
                entries.append("out")
                return False

        moves = rebalance(clients, placement, lock=Guard)
        assert len(moves) == 2
        assert entries == ["in", "out"] * 2
