"""Calibration pins: the model must keep reproducing the paper's numbers.

These tests encode the quantitative claims of the paper's evaluation
section with explicit tolerances.  If someone retunes a hardware
coefficient and a published ratio drifts out of band, these fail.
"""

import pytest

from repro.perfmodel import (
    caffe_mpi,
    model_profile,
    shmcaffe_a,
    shmcaffe_h,
    training_hours,
    training_time,
)

INCEPTION = model_profile("inception_v1")
RESNET = model_profile("resnet_50")
INCRESV2 = model_profile("inception_resnet_v2")
VGG = model_profile("vgg16")


class TestHeadlineSpeedups:
    def test_shmcaffe_10x_faster_than_caffe(self):
        # Paper: "ShmCaffe train 10.1 times faster than Caffe ... when
        # using 16 GPUs" (vs the 1-GPU Caffe baseline).
        speedup = training_hours("caffe", INCEPTION, 1) / training_hours(
            "shmcaffe", INCEPTION, 16
        )
        assert speedup == pytest.approx(10.1, rel=0.2)

    def test_shmcaffe_2_8x_faster_than_caffe_mpi(self):
        speedup = training_hours(
            "caffe_mpi", INCEPTION, 16
        ) / training_hours("shmcaffe", INCEPTION, 16)
        assert speedup == pytest.approx(2.8, rel=0.2)

    def test_comm_5_3x_faster_than_caffe_mpi(self):
        # Paper Fig. 10: "ShmCaffe Communication time is 5.3 time faster
        # than Caffe-MPI".
        ratio = caffe_mpi(INCEPTION, 16).comm_ms / shmcaffe_h(
            INCEPTION, 16, 4
        ).comm_ms
        assert ratio == pytest.approx(5.3, rel=0.35)

    def test_caffe_1gpu_absolute_time(self):
        cell = training_time("caffe", INCEPTION, 1)
        assert cell.hours_minutes == "22:59"

    def test_caffe_multi_gpu_scalability_collapse(self):
        # Paper Table II: Caffe reaches only ~2.7x at 8 GPUs and gets
        # *worse* (~2.3x) at 16.
        at_8 = training_time("caffe", INCEPTION, 8).scalability
        at_16 = training_time("caffe", INCEPTION, 16).scalability
        assert at_8 == pytest.approx(2.7, rel=0.15)
        assert at_16 == pytest.approx(2.3, rel=0.15)
        assert at_16 < at_8


class TestTable5CommRatios:
    @pytest.mark.parametrize(
        "profile,workers,paper_pct,tolerance",
        [
            (INCEPTION, 8, 16.3, 6.0),
            (INCEPTION, 16, 26.0, 8.0),
            (RESNET, 8, 30.0, 6.0),
            (RESNET, 16, 56.0, 8.0),
            (INCRESV2, 16, 65.0, 10.0),
        ],
    )
    def test_async_comm_ratio_near_paper(
        self, profile, workers, paper_pct, tolerance
    ):
        ratio_pct = shmcaffe_a(profile, workers).comm_ratio * 100
        assert ratio_pct == pytest.approx(paper_pct, abs=tolerance)

    def test_resnet_crosses_half_at_16(self):
        # "If it exceeds 50%, the communication time becomes longer than
        # the computation time" — ResNet-50 crosses at 16 GPUs.
        assert shmcaffe_a(RESNET, 16).comm_ratio > 0.5
        assert shmcaffe_a(RESNET, 8).comm_ratio < 0.5

    def test_vgg16_multinode_counterproductive(self):
        # Iterating on 2 GPUs must beat 941.8-vs-389.8-style throughput
        # loss: per-sample time at 2 workers exceeds 1 worker's.
        two = shmcaffe_a(VGG, 2).iteration_ms
        one = shmcaffe_a(VGG, 1).iteration_ms
        assert two > one  # despite half the iterations needed


class TestTable6Hybrid:
    def test_incresv2_16_comm_ratio_drops_to_about_30pct(self):
        hybrid_pct = shmcaffe_h(INCRESV2, 16, 4).comm_ratio * 100
        assert hybrid_pct == pytest.approx(30.7, abs=10.0)

    def test_hybrid_quarter_volume_at_16(self):
        # H's SMB read time at 16 GPUs equals A's at 4 participants.
        hybrid = shmcaffe_h(INCRESV2, 16, 4)
        async_4 = shmcaffe_a(INCRESV2, 4)
        assert hybrid.components["t_rgw"] == pytest.approx(
            async_4.components["t_rgw"]
        )

    def test_fig15_hybrid_wins_total_time_at_16_for_every_model(self):
        for profile in (INCEPTION, RESNET, INCRESV2, VGG):
            a = shmcaffe_a(profile, 16)
            h = shmcaffe_h(profile, 16, 4)
            assert h.iteration_ms < a.iteration_ms


class TestPlatformOrdering:
    def test_fig9_ordering_at_16_gpus(self):
        # Fastest to slowest at 16 GPUs: ShmCaffe < MPICaffe <
        # Caffe-MPI < Caffe.
        hours = {
            name: training_hours(name, INCEPTION, 16)
            for name in ("caffe", "caffe_mpi", "mpi_caffe", "shmcaffe")
        }
        assert hours["shmcaffe"] < hours["mpi_caffe"]
        assert hours["mpi_caffe"] < hours["caffe_mpi"]
        assert hours["caffe_mpi"] < hours["caffe"]

    def test_every_platform_beats_single_gpu_at_8(self):
        baseline = training_hours("caffe", INCEPTION, 1)
        for name in ("caffe", "caffe_mpi", "mpi_caffe", "shmcaffe"):
            assert training_hours(name, INCEPTION, 8) < baseline
