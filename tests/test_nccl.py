"""Tests for the ring-collective (NCCL stand-in) group."""

import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nccl import NcclError, RingGroup


def run_group(size, fn):
    """Run ``fn(rank)`` on ``size`` threads; returns rank-ordered results."""
    results = [None] * size
    errors = []

    def main(rank):
        try:
            results[rank] = fn(rank)
        except BaseException as exc:  # noqa: BLE001
            errors.append(exc)

    threads = [
        threading.Thread(target=main, args=(rank,)) for rank in range(size)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=30)
    if errors:
        raise errors[0]
    return results


class TestAllreduce:
    def test_sum_matches_numpy(self):
        group = RingGroup(4)
        data = [np.random.default_rng(r).standard_normal(37).astype(
            np.float32) for r in range(4)]
        expected = np.sum(data, axis=0)

        results = run_group(4, lambda r: group.allreduce(r, data[r]))
        for result in results:
            np.testing.assert_allclose(result, expected, rtol=1e-5)

    def test_average(self):
        group = RingGroup(3)
        results = run_group(
            3,
            lambda r: group.allreduce(
                r, np.full(5, float(r), dtype=np.float32), average=True
            ),
        )
        for result in results:
            np.testing.assert_allclose(result, 1.0)

    def test_preserves_shape(self):
        group = RingGroup(2)
        results = run_group(
            2, lambda r: group.allreduce(r, np.ones((3, 4), dtype=np.float32))
        )
        assert results[0].shape == (3, 4)

    def test_single_member_is_identity(self):
        group = RingGroup(1)
        values = np.asarray([1.0, 2.0], dtype=np.float32)
        out = group.allreduce(0, values)
        np.testing.assert_array_equal(out, values)
        assert out is not values  # caller owns a copy

    def test_length_mismatch_fails_everyone(self):
        group = RingGroup(2)
        with pytest.raises(NcclError):
            run_group(
                2,
                lambda r: group.allreduce(
                    r, np.zeros(3 + r, dtype=np.float32)
                ),
            )

    def test_repeated_collectives_reuse_group(self):
        group = RingGroup(3)

        def many(rank):
            total = 0.0
            for step in range(5):
                out = group.allreduce(
                    rank, np.asarray([float(step)], dtype=np.float32)
                )
                total += float(out[0])
            return total

        results = run_group(3, many)
        assert all(r == sum(3.0 * s for s in range(5)) for r in results)

    def test_bytes_accounting_uses_ring_formula(self):
        group = RingGroup(4)
        payload = np.zeros(100, dtype=np.float32)
        run_group(4, lambda r: group.allreduce(r, payload))
        per_member = group.bytes_per_member(payload.nbytes)
        assert per_member == int(2 * 3 / 4 * 400)
        assert group.bytes_moved == per_member * 4
        assert group.collective_count == 1


class TestBroadcastReduce:
    def test_broadcast_from_root(self):
        group = RingGroup(3)
        payload = np.asarray([9.0, 8.0], dtype=np.float32)
        results = run_group(
            3,
            lambda r: group.broadcast(
                r, payload if r == 0 else None, root=0
            ),
        )
        for result in results:
            np.testing.assert_array_equal(result, payload)

    def test_broadcast_nonzero_root(self):
        group = RingGroup(3)
        results = run_group(
            3,
            lambda r: group.broadcast(
                r, np.asarray([5.0]) if r == 2 else None, root=2
            ),
        )
        for result in results:
            np.testing.assert_array_equal(result, [5.0])

    def test_reduce_only_root_gets_result(self):
        group = RingGroup(3)
        results = run_group(
            3,
            lambda r: group.reduce(r, np.asarray([1.0], dtype=np.float32)),
        )
        np.testing.assert_allclose(results[0], [3.0])
        assert results[1] is None
        assert results[2] is None

    def test_bad_rank_rejected(self):
        group = RingGroup(2)
        with pytest.raises(NcclError):
            group.allreduce(2, np.zeros(1, dtype=np.float32))

    def test_bad_size_rejected(self):
        with pytest.raises(ValueError):
            RingGroup(0)


@settings(max_examples=25, deadline=None)
@given(
    size=st.integers(min_value=1, max_value=5),
    length=st.integers(min_value=1, max_value=64),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_allreduce_equals_numpy_sum_property(size, length, seed):
    """Ring allreduce == element-wise sum for any group/shape/content."""
    group = RingGroup(size)
    rng = np.random.default_rng(seed)
    data = [
        rng.standard_normal(length).astype(np.float32) for _ in range(size)
    ]
    expected = np.sum(data, axis=0)
    results = run_group(size, lambda r: group.allreduce(r, data[r]))
    for result in results:
        np.testing.assert_allclose(result, expected, rtol=1e-4, atol=1e-5)
