"""Integration tests: SMB over real TCP sockets (multi-process emulation)."""

import socket
import threading

import numpy as np
import pytest

from repro.smb import (
    SMBClient,
    SMBConnectionError,
    TcpSMBServer,
    UnknownKeyError,
)


@pytest.fixture()
def tcp_server():
    with TcpSMBServer(capacity=1 << 22) as server:
        yield server


class TestTcpServer:
    def test_basic_roundtrip(self, tcp_server):
        client = SMBClient.connect(tcp_server.address)
        array = client.create_array("w", 32)
        values = np.arange(32, dtype=np.float32)
        array.write(values)
        np.testing.assert_array_equal(array.read(), values)
        client.close()

    def test_sharing_across_connections(self, tcp_server):
        master = SMBClient.connect(tcp_server.address)
        slave = SMBClient.connect(tcp_server.address)
        array = master.create_array("W_g", 8)
        array.write(np.full(8, 2.5, dtype=np.float32))
        view = slave.attach_array("W_g", array.shm_key, 8)
        np.testing.assert_allclose(view.read(), 2.5)
        master.close()
        slave.close()

    def test_remote_error_reconstructed(self, tcp_server):
        client = SMBClient.connect(tcp_server.address)
        with pytest.raises(UnknownKeyError):
            client.attach(999999)
        client.close()

    def test_accumulate_over_tcp(self, tcp_server):
        client = SMBClient.connect(tcp_server.address)
        global_w = client.create_array("W_g", 16)
        delta = client.create_array("dW", 16)
        delta.write(np.full(16, 0.5, dtype=np.float32))
        delta.accumulate_into(global_w)
        delta.accumulate_into(global_w)
        np.testing.assert_allclose(global_w.read(), 1.0)
        client.close()

    def test_concurrent_clients_accumulate(self, tcp_server):
        boot = SMBClient.connect(tcp_server.address)
        global_w = boot.create_array("W_g", 64)
        num_clients = 6
        repeats = 10
        errors = []

        def worker(index):
            try:
                client = SMBClient.connect(tcp_server.address)
                delta = client.create_array(f"dW_{index}", 64)
                delta.write(np.ones(64, dtype=np.float32))
                shm_key, _ = client.lookup("W_g")
                view = client.attach_array("W_g", shm_key, 64)
                for _ in range(repeats):
                    delta.accumulate_into(view)
                client.close()
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(i,))
            for i in range(num_clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not errors
        np.testing.assert_allclose(
            global_w.read(), num_clients * repeats
        )
        boot.close()

    def test_non_smb_client_rejected(self, tcp_server):
        # A client that skips the HELLO handshake gets dropped.
        raw = socket.create_connection(tcp_server.address, timeout=5)
        raw.sendall(b"GET / HTTP/1.0\r\n\r\n")
        raw.settimeout(2.0)
        # The server closes without answering: either clean EOF or a reset
        # depending on whether our extra bytes were still in flight.
        try:
            data = raw.recv(16)
        except ConnectionResetError:
            data = b""
        assert data == b""
        raw.close()

    def test_connect_to_dead_server_raises(self):
        with pytest.raises(SMBConnectionError):
            SMBClient.connect(("127.0.0.1", 1))  # nothing listens there

    def test_stats_over_tcp(self, tcp_server):
        client = SMBClient.connect(tcp_server.address)
        array = client.create_array("w", 16)
        array.write(np.zeros(16, dtype=np.float32))
        stats = client.stats()
        assert stats["bytes_written"] >= 64
        client.close()

    def test_wait_update_across_connections(self, tcp_server):
        master = SMBClient.connect(tcp_server.address)
        array = master.create_array("w", 4)
        results = []

        def waiter():
            watcher = SMBClient.connect(tcp_server.address)
            view = watcher.attach_array("w", array.shm_key, 4)
            results.append(view.wait_update(version=0, timeout=10.0))
            watcher.close()

        thread = threading.Thread(target=waiter)
        thread.start()
        import time

        time.sleep(0.1)
        array.write(np.ones(4, dtype=np.float32))
        thread.join(timeout=10)
        assert results == [1]
        master.close()
