"""The refactored training core is behaviorally identical to its ancestors.

The engine/strategy/driver refactor replaced ``ShmCaffeWorker`` and
``HybridWorker``'s welded-in loops with one ``TrainingEngine`` and
pluggable ``ExchangeStrategy`` implementations.  These tests pin the
refactor down:

* **golden equivalence** — seeded runs must reproduce, bit for bit, the
  per-iteration loss trajectories captured from the pre-refactor classes
  for ShmCaffe-A (overlap on/off), ShmCaffe-H, and the stale-read
  ablation;
* **lr canonicalization** — every platform records the learning rate
  actually applied at that step (``HybridWorker`` used to derive it
  separately);
* **validation** — misconfigurations that used to be silently ignored now
  raise;
* **seams** — ``ParameterBuffer`` conformance, the ``smb_asgd`` strategy
  end to end, HSGD root overlap on the update-thread telemetry track, and
  the single-call-site rule for the eqs. (5)-(7) math.
"""

import re
from pathlib import Path

import numpy as np
import pytest

from repro import telemetry
from repro.caffe import SolverConfig, SyntheticImageDataset
from repro.core import (
    DistributedTrainingManager,
    ExchangeStrategy,
    HybridExchange,
    OverlapDriver,
    SEASGDExchange,
    ShmCaffeConfig,
    ShmCaffeWorker,
    SMBAsgdExchange,
    StaleReadExchange,
    TerminationCriterion,
)
from repro.smb import (
    ParameterBuffer,
    RetryPolicy,
    SMBClient,
    SMBServer,
    create_sharded_array,
)
from repro.smb.faults import FaultPlan

from .test_netspec import small_spec

#: Per-iteration losses captured from the pre-refactor ShmCaffeWorker /
#: HybridWorker classes (commit 8034117) under the exact seeded setup of
#: ``run_job`` below.  The refactored engine must reproduce them exactly.
GOLDEN_LOSSES = {
    "a": [[1.9139208793640137, 1.4326462745666504, 1.5501587390899658,
           1.278092861175537, 1.4465742111206055, 1.3167544603347778]],
    "hybrid": [[1.3550125360488892, 1.5377461910247803, 1.5437177419662476,
                1.4608427286148071, 1.5365022420883179],
               [1.3739042282104492, 1.3872113227844238, 1.4314543008804321,
                1.4363481998443604, 1.569166660308838]],
}
GOLDEN_HYBRID_LRS = [[0.05] * 5, [0.05] * 5]


def golden_dataset():
    return SyntheticImageDataset(
        num_classes=4, image_size=8, train_per_class=40, test_per_class=8,
        noise=0.7, seed=11,
    )


def run_job(
    num_workers=1,
    group_size=1,
    iterations=6,
    overlap=True,
    stale=False,
    algorithm="seasgd",
    solver=None,
    telemetry_session=None,
    retry_policy=None,
    fault_plan=None,
    criterion=TerminationCriterion.MASTER_STOP,
):
    """The seeded job the goldens were captured from (and variations)."""
    config = ShmCaffeConfig(
        solver=solver if solver is not None else SolverConfig(
            base_lr=0.05, momentum=0.9
        ),
        moving_rate=0.2,
        update_interval=1,
        max_iterations=iterations,
        termination=criterion,
        overlap_updates=overlap,
        stale_global_read=stale,
        algorithm=algorithm,
    )
    manager = DistributedTrainingManager(
        spec_factory=lambda: small_spec(batch=4),
        config=config,
        dataset=golden_dataset(),
        batch_size=4,
        num_workers=num_workers,
        group_size=group_size,
        seed=3,
        telemetry=telemetry_session,
        retry_policy=retry_policy,
        fault_plan=fault_plan,
    )
    return manager.run(timeout=300)


class TestGoldenEquivalence:
    """Refactored engine == pre-refactor workers, bit for bit."""

    def test_shmcaffe_a_sync_matches_prerefactor(self):
        result = run_job(overlap=False)
        assert [h.losses for h in result.histories] == GOLDEN_LOSSES["a"]

    def test_shmcaffe_a_overlap_matches_prerefactor(self):
        result = run_job(overlap=True)
        assert [h.losses for h in result.histories] == GOLDEN_LOSSES["a"]

    def test_stale_read_matches_prerefactor(self, monkeypatch):
        # The stale ablation is inherently racy; force the deferred
        # exchange inline (exactly how the pre-refactor golden was
        # captured) so the trajectory is deterministic.
        monkeypatch.setattr(
            OverlapDriver, "submit", lambda self, thunk: thunk()
        )
        result = run_job(stale=True)
        assert [h.losses for h in result.histories] == GOLDEN_LOSSES["a"]

    @pytest.mark.parametrize("overlap", [False, True])
    def test_hybrid_matches_prerefactor(self, overlap):
        # The pre-refactor HybridWorker always exchanged synchronously;
        # with a single group the overlapped root is provably identical
        # (the flush is awaited before the only reader's next read), so
        # one golden pins both modes.
        result = run_job(
            num_workers=2, group_size=2, iterations=5, overlap=overlap
        )
        assert [h.losses for h in result.histories] == GOLDEN_LOSSES[
            "hybrid"
        ]
        assert [
            [r.learning_rate for r in h.records] for h in result.histories
        ] == GOLDEN_HYBRID_LRS


class TestLearningRateCanonicalization:
    """Every platform records the lr actually applied at that step."""

    STEP_SOLVER = SolverConfig(
        base_lr=0.05, momentum=0.9, lr_policy="step", gamma=0.5, stepsize=2
    )

    def check_records(self, histories):
        for history in histories:
            assert history.records, "no iterations recorded"
            for record in history.records:
                # Iteration i in the history was trained with the solver
                # clock at i-1; the canonical lr is the one applied then.
                assert record.learning_rate == pytest.approx(
                    self.STEP_SOLVER.learning_rate(record.iteration - 1)
                )

    def test_seasgd_records_applied_lr(self):
        result = run_job(iterations=5, solver=self.STEP_SOLVER)
        self.check_records(result.histories)

    def test_hybrid_records_applied_lr(self):
        # The pre-refactor HybridWorker derived this value through a
        # separate formula; the engine now records the strategy's
        # stats["lr"] everywhere.
        result = run_job(
            num_workers=2, group_size=2, iterations=5,
            solver=self.STEP_SOLVER,
        )
        self.check_records(result.histories)

    def test_smb_asgd_records_applied_lr(self):
        result = run_job(
            iterations=5, algorithm="smb_asgd", solver=self.STEP_SOLVER
        )
        self.check_records(result.histories)


class TestValidation:
    """Misconfigurations fail loudly instead of silently degrading."""

    def test_update_interval_below_one_rejected(self):
        with pytest.raises(ValueError, match="update_interval"):
            ShmCaffeConfig(update_interval=0)

    def test_stale_read_with_non_seasgd_algorithm_rejected(self):
        with pytest.raises(ValueError, match="stale_global_read"):
            ShmCaffeConfig(stale_global_read=True, algorithm="smb_asgd")

    def test_stale_read_with_groups_rejected(self):
        # HybridWorker used to drop the ablation on the floor.
        with pytest.raises(ValueError, match="stale_global_read"):
            DistributedTrainingManager(
                spec_factory=lambda: small_spec(batch=4),
                config=ShmCaffeConfig(stale_global_read=True),
                dataset=golden_dataset(),
                batch_size=4,
                num_workers=2,
                group_size=2,
            )

    def test_non_seasgd_algorithm_with_groups_rejected(self):
        with pytest.raises(ValueError, match="smb_asgd"):
            DistributedTrainingManager(
                spec_factory=lambda: small_spec(batch=4),
                config=ShmCaffeConfig(algorithm="smb_asgd"),
                dataset=golden_dataset(),
                batch_size=4,
                num_workers=2,
                group_size=2,
            )

    def test_unknown_algorithm_rejected_at_worker_build(self):
        from repro.caffe import Net

        server = SMBServer(capacity=1 << 22)
        client = SMBClient.in_process(server)
        net = Net(small_spec(batch=4), seed=0)
        from repro.caffe.params import FlatParams

        count = FlatParams(net).count
        global_array = client.create_array("W_g", count)
        increment = client.create_array("dW_0", count)
        with pytest.raises(ValueError, match="unknown exchange algorithm"):
            ShmCaffeWorker(
                rank=0,
                net=net,
                config=ShmCaffeConfig(algorithm="definitely_not_real"),
                global_weights=global_array,
                increment_buffer=increment,
                batches=iter([]),
            )


class TestParameterBufferProtocol:
    """Both SMB backends satisfy the formal buffer seam."""

    def test_remote_array_conforms(self):
        server = SMBServer(capacity=1 << 20)
        client = SMBClient.in_process(server)
        array = client.create_array("seg", 32)
        assert isinstance(array, ParameterBuffer)

    def test_sharded_array_conforms(self):
        clients = [
            SMBClient.in_process(SMBServer(capacity=1 << 20))
            for _ in range(2)
        ]
        sharded = create_sharded_array(clients, "seg", 32)
        assert isinstance(sharded, ParameterBuffer)

    def test_arbitrary_object_does_not_conform(self):
        assert not isinstance(object(), ParameterBuffer)

    def test_strategies_satisfy_exchange_protocol(self):
        for cls in (
            SEASGDExchange, StaleReadExchange, SMBAsgdExchange,
            HybridExchange,
        ):
            assert issubclass(cls, object)
        server = SMBServer(capacity=1 << 20)
        client = SMBClient.in_process(server)
        a = client.create_array("a", 8)
        b = client.create_array("b", 8)
        assert isinstance(SEASGDExchange(a, b), ExchangeStrategy)
        assert isinstance(SMBAsgdExchange(a, b), ExchangeStrategy)


class TestHsgdRootOverlap:
    """HSGD roots now hide their write side on the Fig.-6 update thread."""

    def test_root_wwi_ugw_land_on_update_thread_track(self):
        with telemetry.session("trace") as tel:
            result = run_job(
                num_workers=2, group_size=2, iterations=4, overlap=True,
                telemetry_session=tel,
            )
            assert all(h.completed_iterations == 4 for h in result.histories)
            events = tel.trace.events()
        spans = {
            (e["pid"], e["tid"], e["name"])
            for e in events if e.get("ph") == "X"
        }
        # Root = rank 0: its flushes run on the update-thread lane (tid 1).
        assert (0, 1, "wwi") in spans
        assert (0, 1, "ugw") in spans
        # The read side stays deliberately synchronous on the main lane.
        assert (0, 0, "rgw") in spans
        assert (0, 0, "block") in spans
        # The non-root member (rank 1) never touches SMB.
        assert not any(
            pid == 1 and name in ("wwi", "ugw", "rgw") for pid, _, name in spans
        )

    def test_root_sync_mode_keeps_flushes_on_main_track(self):
        with telemetry.session("trace") as tel:
            run_job(
                num_workers=2, group_size=2, iterations=3, overlap=False,
                telemetry_session=tel,
            )
            events = tel.trace.events()
        spans = {
            (e["pid"], e["tid"], e["name"])
            for e in events if e.get("ph") == "X"
        }
        assert (0, 0, "wwi") in spans
        assert (0, 0, "ugw") in spans
        assert not any(tid == 1 for _, tid, _ in spans)


class TestSmbAsgdExchange:
    """The Downpour-over-SMB strategy runs end to end through the stack."""

    @pytest.mark.parametrize("overlap", [False, True])
    def test_two_worker_run_completes(self, overlap):
        result = run_job(
            num_workers=2, iterations=5, algorithm="smb_asgd",
            overlap=overlap,
        )
        # MASTER_STOP: the master runs its full budget; the other worker
        # winds down as soon as the master is done.
        assert result.histories[0].completed_iterations == 5
        assert all(
            h.completed_iterations >= 1 for h in result.histories
        )
        assert all(
            np.isfinite(h.losses).all() for h in result.histories
        )
        assert np.isfinite(result.final_global_weights).all()

    def test_pushes_reach_the_global_weights(self):
        # The server-side W_g must move: every iteration accumulates
        # -lr * gradient into it (apply-on-arrival, no elastic pull).
        from repro.caffe import Net
        from repro.caffe.params import FlatParams

        initial = FlatParams(Net(small_spec(batch=4), seed=3)).get_vector()
        result = run_job(iterations=4, algorithm="smb_asgd", overlap=False)
        assert not np.allclose(result.final_global_weights, initial)

    def test_registered_in_exchange_registry(self):
        from repro.core import EXCHANGES

        assert "seasgd" in EXCHANGES
        assert "smb_asgd" in EXCHANGES


class TestSingleExchangeImplementation:
    """Grep-level acceptance: eqs. (5)-(7) math has one call site."""

    def test_weight_increment_called_only_from_strategy_layer(self):
        src = Path(__file__).resolve().parent.parent / "src" / "repro"
        callers = set()
        pattern = re.compile(r"(?<!def )\bweight_increment\(")
        for path in src.rglob("*.py"):
            rel = path.relative_to(src).as_posix()
            body = path.read_text(encoding="utf-8")
            if pattern.search(body):
                callers.add(rel)
        # The pure-math module may compose its own primitives; the only
        # *training-stack* call site is elastic_increment in exchange.py.
        assert callers == {"core/seasgd.py", "core/exchange.py"}


@pytest.mark.chaos
class TestEngineDegradation:
    """Kill-1-rank graceful degradation works through the engine path."""

    FAST_RETRY = RetryPolicy(
        max_attempts=6, base_backoff=0.001, max_backoff=0.01,
        request_timeout=10.0, seed=7,
    )

    def test_seasgd_kill_one_rank_survivors_complete(self):
        result = run_job(
            num_workers=4, iterations=6,
            criterion=TerminationCriterion.AVERAGE_ITERATIONS,
            retry_policy=self.FAST_RETRY,
            fault_plan=FaultPlan(
                seed=77, error_rate=0.05, kill_rank=2, kill_after=15
            ),
        )
        assert result.failed_ranks == [2]
        assert sorted(result.surviving_ranks) == [0, 1, 3]
        assert result.histories[2].failed and result.histories[2].failure
        survivor_iters = [
            h.completed_iterations
            for h in result.histories if not h.failed
        ]
        assert np.mean(survivor_iters) >= 6
        assert np.isfinite(result.final_global_weights).all()

    def test_smb_asgd_kill_one_rank_survivors_complete(self):
        # The degradation path is strategy-agnostic: the new Downpour
        # strategy inherits it from the engine untouched.
        result = run_job(
            num_workers=4, iterations=6, algorithm="smb_asgd",
            criterion=TerminationCriterion.AVERAGE_ITERATIONS,
            retry_policy=self.FAST_RETRY,
            fault_plan=FaultPlan(seed=21, kill_rank=1, kill_after=12),
        )
        assert result.failed_ranks == [1]
        survivors = [h for h in result.histories if not h.failed]
        assert len(survivors) == 3
        assert all(h.completed_iterations >= 1 for h in survivors)
        assert np.isfinite(result.final_global_weights).all()
