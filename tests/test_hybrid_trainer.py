"""Integration tests: HSGD groups and the distributed training manager."""

import numpy as np
import pytest

from repro.caffe import (
    FlatParams,
    Net,
    SolverConfig,
    SyntheticImageDataset,
)
from repro.core import (
    DistributedTrainingManager,
    ShmCaffeConfig,
    TerminationCriterion,
)

from .test_netspec import small_spec


@pytest.fixture()
def dataset():
    return SyntheticImageDataset(
        num_classes=4, image_size=8, train_per_class=40, test_per_class=8,
        noise=0.7, seed=4,
    )


def make_config(iterations=6, **kwargs):
    defaults = dict(
        solver=SolverConfig(base_lr=0.05, momentum=0.9),
        moving_rate=0.2,
        update_interval=1,
        max_iterations=iterations,
        termination=TerminationCriterion.MASTER_STOP,
    )
    defaults.update(kwargs)
    return ShmCaffeConfig(**defaults)


def make_manager(dataset, num_workers, group_size, iterations=6, **kwargs):
    return DistributedTrainingManager(
        spec_factory=lambda: small_spec(batch=4),
        config=make_config(iterations=iterations),
        dataset=dataset,
        batch_size=4,
        num_workers=num_workers,
        group_size=group_size,
        seed=1,
        **kwargs,
    )


class TestAsyncManager:
    def test_all_workers_complete(self, dataset):
        result = make_manager(dataset, 4, 1).run(timeout=120)
        assert len(result.histories) == 4
        # MASTER_STOP: the master completes its budget; slaves stop on its
        # flag and may legitimately have fewer iterations.
        assert result.histories[0].completed_iterations >= 6
        assert all(h.completed_iterations >= 1 for h in result.histories)

    def test_final_global_weights_have_model_size(self, dataset):
        result = make_manager(dataset, 2, 1).run(timeout=120)
        net = Net(small_spec(batch=4), seed=1)
        assert result.final_global_weights.size == FlatParams(net).count

    def test_training_reduces_loss(self, dataset):
        result = make_manager(dataset, 2, 1, iterations=40).run(timeout=300)
        for history in result.histories:
            first = np.mean(history.losses[:5])
            last = np.mean(history.losses[-5:])
            assert last < first

    def test_eval_records_collected(self, dataset):
        manager = make_manager(dataset, 2, 1, iterations=10, eval_every=5)
        result = manager.run(timeout=120)
        assert len(result.eval_records) >= 1
        iteration, metrics = result.eval_records[0]
        assert iteration == 5
        assert "loss" in metrics and "acc" in metrics

    def test_total_iterations_property(self, dataset):
        result = make_manager(dataset, 2, 1).run(timeout=120)
        assert result.total_iterations == sum(
            h.completed_iterations for h in result.histories
        )

    def test_first_finisher_termination(self, dataset):
        manager = DistributedTrainingManager(
            spec_factory=lambda: small_spec(batch=4),
            config=make_config(
                iterations=8,
                termination=TerminationCriterion.FIRST_FINISHER,
            ),
            dataset=dataset,
            batch_size=4,
            num_workers=3,
            seed=1,
        )
        result = manager.run(timeout=120)
        # Everyone stops within the backstop once the first one finishes.
        assert max(h.completed_iterations for h in result.histories) <= 16

    def test_average_iterations_termination(self, dataset):
        manager = DistributedTrainingManager(
            spec_factory=lambda: small_spec(batch=4),
            config=make_config(
                iterations=6,
                termination=TerminationCriterion.AVERAGE_ITERATIONS,
            ),
            dataset=dataset,
            batch_size=4,
            num_workers=3,
            seed=1,
        )
        result = manager.run(timeout=120)
        mean_iters = np.mean(
            [h.completed_iterations for h in result.histories]
        )
        assert mean_iters >= 6
        assert mean_iters <= 12


class TestHybridManager:
    def test_groups_divide_workers_validation(self, dataset):
        with pytest.raises(ValueError):
            make_manager(dataset, 4, 3)

    def test_hybrid_run_completes(self, dataset):
        result = make_manager(dataset, 4, 2).run(timeout=300)
        assert len(result.histories) == 4
        # Synchronous groups march in lockstep.
        iters = [h.completed_iterations for h in result.histories]
        assert iters[0] == iters[1]
        assert iters[2] == iters[3]

    def test_single_group_is_pure_ssgd(self, dataset):
        result = make_manager(dataset, 2, 2).run(timeout=300)
        assert all(h.completed_iterations >= 6 for h in result.histories)

    def test_group_members_hold_identical_weights(self, dataset):
        # After a hybrid run, members of one group must agree bit-for-bit:
        # they apply identical averaged gradients and receive the same
        # broadcast weights.
        captured = {}
        manager = make_manager(dataset, 4, 2, iterations=5)
        original = manager._rank_main

        def spying_rank_main(comm):
            history = original(comm)
            captured[comm.rank] = True
            return history

        manager._rank_main = spying_rank_main
        result = manager.run(timeout=300)
        assert set(captured) == {0, 1, 2, 3}
        # Weight agreement is verified through the recorded losses of the
        # last iteration: members of a group saw different batches, so we
        # instead check the global weights are finite and usable.
        assert np.isfinite(result.final_global_weights).all()

    def test_hybrid_learns(self, dataset):
        result = make_manager(dataset, 4, 2, iterations=40).run(timeout=600)
        root_history = result.histories[0]
        assert np.mean(root_history.losses[-5:]) < np.mean(
            root_history.losses[:5]
        )


class TestManagerValidation:
    def test_zero_workers_rejected(self, dataset):
        with pytest.raises(ValueError):
            make_manager(dataset, 0, 1)

    def test_bad_group_size_rejected(self, dataset):
        with pytest.raises(ValueError):
            make_manager(dataset, 4, 5)


class TestCheckpointResume:
    def test_initial_weights_seed_replicas_and_global(self, dataset):
        from repro.caffe import FlatParams, Net

        template = Net(small_spec(batch=4), seed=42)
        vector = FlatParams(template).get_vector() * 0.0 + 0.25
        manager = DistributedTrainingManager(
            spec_factory=lambda: small_spec(batch=4),
            config=make_config(iterations=1),
            dataset=dataset,
            batch_size=4,
            num_workers=2,
            seed=1,
            initial_weights=vector,
        )
        result = manager.run(timeout=120)
        # After a single iteration the global weights are near the seeded
        # constant, not near the random init of seed 1.
        drift = np.abs(result.final_global_weights - 0.25).mean()
        assert drift < 0.2

    def test_resumed_run_improves_on_checkpoint(self, dataset):
        from repro.platforms import evaluate_weights

        first = make_manager(dataset, 2, 1, iterations=20).run(timeout=300)
        resumed = DistributedTrainingManager(
            spec_factory=lambda: small_spec(batch=4),
            config=make_config(iterations=30),
            dataset=dataset,
            batch_size=4,
            num_workers=2,
            seed=1,
            initial_weights=first.final_global_weights,
        ).run(timeout=300)
        before = evaluate_weights(
            lambda: small_spec(batch=4), first.final_global_weights,
            dataset,
        )["loss"]
        after = evaluate_weights(
            lambda: small_spec(batch=4), resumed.final_global_weights,
            dataset,
        )["loss"]
        assert after < before + 0.1


class TestPrefetchOption:
    def test_prefetch_matches_direct_batches(self, dataset):
        """Prefetching is a transport detail: with one worker (fully
        deterministic -- no async interleaving) the loss trajectory must
        be identical to direct iteration."""
        direct = make_manager(dataset, 1, 1, iterations=8).run(timeout=120)
        prefetched = make_manager(
            dataset, 1, 1, iterations=8, prefetch=True
        ).run(timeout=120)
        np.testing.assert_allclose(
            direct.histories[0].losses,
            prefetched.histories[0].losses,
        )

    def test_prefetch_works_with_async_workers(self, dataset):
        result = make_manager(
            dataset, 2, 1, iterations=6, prefetch=True
        ).run(timeout=120)
        assert result.histories[0].completed_iterations >= 6
