"""Tests for the prototxt text format, input transforms, and SMB LIST."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.caffe import Minibatch, Net, models, prototxt
from repro.caffe.netspec import infer
from repro.caffe.prototxt import PrototxtError
from repro.caffe.transforms import (
    TransformError,
    TransformParams,
    Transformer,
)
from repro.smb import SMBClient, SMBServer, TcpSMBServer

from .test_netspec import small_spec


class TestPrototxtRoundtrip:
    @pytest.mark.parametrize(
        "name", ["inception_v1", "resnet_50", "inception_resnet_v2",
                 "vgg16"]
    )
    def test_scaled_models_roundtrip(self, name):
        spec = models.scaled_spec(name, batch_size=4)
        text = prototxt.dumps(spec)
        back = prototxt.loads(text)
        assert back.name == spec.name
        assert len(back.layers) == len(spec.layers)
        for original, parsed in zip(spec.layers, back.layers):
            assert parsed.type_name == original.type_name
            assert parsed.name == original.name
            assert parsed.bottoms == original.bottoms
            assert parsed.tops == original.tops
        # The parsed spec must be functionally identical: same shapes,
        # same parameter count.
        assert infer(back).param_count == infer(spec).param_count

    def test_full_inception_roundtrip(self):
        spec = models.full_spec("inception_v1", batch_size=1)
        back = prototxt.loads(prototxt.dumps(spec))
        assert infer(back).param_count == infer(spec).param_count

    def test_parsed_spec_instantiates(self):
        spec = small_spec()
        back = prototxt.loads(prototxt.dumps(spec))
        net = Net(back, seed=0)
        assert net.param_count() == Net(spec, seed=0).param_count()

    def test_file_roundtrip(self, tmp_path):
        spec = small_spec()
        path = tmp_path / "net.prototxt"
        prototxt.save(spec, path)
        back = prototxt.load(path)
        assert len(back.layers) == len(spec.layers)

    def test_rectangular_kernels_roundtrip(self):
        from repro.caffe.netspec import NetSpec

        spec = NetSpec("rect")
        data = spec.input("data", (1, 3, 9, 9))
        spec.conv("c", data, 4, kernel=(1, 7), pad=(0, 3), bias=False)
        back = prototxt.loads(prototxt.dumps(spec))
        assert back.layers[1].kwargs["kernel"] == (1, 7)
        assert back.layers[1].kwargs["bias"] is False

    def test_comments_and_whitespace_tolerated(self):
        text = (
            '# a comment\n'
            'name: "demo"\n'
            'layer {\n'
            '  type: "Input"  # inline comment\n'
            '  name: "data"\n'
            '  top: "data"\n'
            '  param { shape: (1, 3, 4, 4) }\n'
            '}\n'
        )
        spec = prototxt.loads(text)
        assert spec.name == "demo"
        assert spec.layers[0].kwargs["shape"] == (1, 3, 4, 4)

    def test_parse_errors_carry_line_numbers(self):
        with pytest.raises(PrototxtError):
            prototxt.loads('layer { type: "Input" }')  # missing name
        with pytest.raises(PrototxtError):
            prototxt.loads("garbage ~~~")

    def test_duplicate_layer_rejected(self):
        text = (
            'layer { type: "Input" name: "a" top: "a" '
            'param { shape: (1, 2) } }\n'
        ) * 2
        with pytest.raises(PrototxtError):
            prototxt.loads(text)

    @settings(max_examples=20, deadline=None)
    @given(
        num_output=st.integers(1, 64),
        kernel=st.integers(1, 5),
        ratio=st.floats(min_value=0.0, max_value=0.875, width=32),
    )
    def test_kwargs_roundtrip_property(self, num_output, kernel, ratio):
        from repro.caffe.netspec import NetSpec

        spec = NetSpec("prop")
        data = spec.input("data", (1, 3, 8, 8))
        top = spec.conv("c", data, num_output, kernel=kernel,
                        pad=kernel // 2)
        spec.add("Dropout", "d", [top], ratio=float(ratio))
        back = prototxt.loads(prototxt.dumps(spec))
        assert back.layers[1].kwargs["num_output"] == num_output
        assert back.layers[2].kwargs["ratio"] == pytest.approx(ratio)


class TestTransforms:
    def make_batch(self, n=4, c=3, size=8, seed=0):
        rng = np.random.default_rng(seed)
        return Minibatch(
            rng.standard_normal((n, c, size, size)).astype(np.float32),
            rng.integers(0, 3, n),
        )

    def test_identity_by_default(self):
        transformer = Transformer()
        batch = self.make_batch()
        out = transformer.apply(batch)
        assert out is batch  # zero-copy no-op

    def test_scale_and_mean(self):
        transformer = Transformer(
            TransformParams(scale=2.0, mean_value=1.0)
        )
        batch = self.make_batch()
        out = transformer.apply(batch)
        np.testing.assert_allclose(
            out.images, (batch.images - 1.0) * 2.0, rtol=1e-6
        )

    def test_per_channel_mean(self):
        transformer = Transformer(
            TransformParams(mean_value=[1.0, 2.0, 3.0])
        )
        batch = self.make_batch()
        out = transformer.apply(batch)
        np.testing.assert_allclose(
            out.images[:, 2], batch.images[:, 2] - 3.0, rtol=1e-6
        )

    def test_mean_count_checked(self):
        transformer = Transformer(TransformParams(mean_value=[1.0, 2.0]))
        with pytest.raises(TransformError):
            transformer.apply(self.make_batch(c=3))

    def test_crop_train_vs_test(self):
        params = TransformParams(crop_size=4)
        batch = self.make_batch(size=8)
        train_out = Transformer(params, seed=1).apply(batch, train=True)
        test_out = Transformer(params, seed=1).apply(batch, train=False)
        assert train_out.images.shape == (4, 3, 4, 4)
        # Test-time crop is the deterministic centre window.
        np.testing.assert_array_equal(
            test_out.images, batch.images[:, :, 2:6, 2:6]
        )

    def test_crop_too_large_rejected(self):
        transformer = Transformer(TransformParams(crop_size=16))
        with pytest.raises(TransformError):
            transformer.apply(self.make_batch(size=8))

    def test_mirror_only_at_train_time(self):
        params = TransformParams(mirror=True)
        batch = self.make_batch(n=64)
        test_out = Transformer(params, seed=2).apply(batch, train=False)
        np.testing.assert_array_equal(test_out.images, batch.images)
        train_out = Transformer(params, seed=2).apply(batch, train=True)
        flipped = np.asarray([
            not np.array_equal(a, b)
            for a, b in zip(train_out.images, batch.images)
        ])
        # Roughly half the images flipped (Bernoulli 0.5 over 64).
        assert 10 < flipped.sum() < 54

    def test_deterministic_per_seed(self):
        params = TransformParams(mirror=True, crop_size=4)
        batch = self.make_batch(size=8)
        a = Transformer(params, seed=9).apply(batch)
        b = Transformer(params, seed=9).apply(batch)
        np.testing.assert_array_equal(a.images, b.images)

    def test_stream_wraps_iterator(self):
        params = TransformParams(crop_size=4)
        transformer = Transformer(params)
        batches = [self.make_batch(seed=s, size=8) for s in range(3)]
        out = list(transformer.stream(iter(batches)))
        assert len(out) == 3
        assert all(b.images.shape[-1] == 4 for b in out)

    def test_labels_preserved(self):
        transformer = Transformer(TransformParams(scale=0.5))
        batch = self.make_batch()
        out = transformer.apply(batch)
        np.testing.assert_array_equal(out.labels, batch.labels)

    def test_invalid_crop_size(self):
        with pytest.raises(ValueError):
            TransformParams(crop_size=-1)


class TestSmbList:
    def test_inventory_and_capacity(self):
        server = SMBServer(capacity=1 << 20)
        client = SMBClient.in_process(server)
        client.create_array("W_g", 100)
        client.create_array("dW_0", 50)
        listing = client.list_segments()
        names = [entry["name"] for entry in listing["segments"]]
        assert names == ["W_g", "dW_0"]
        assert listing["used"] == 600
        assert listing["capacity"] == 1 << 20

    def test_versions_reported(self):
        server = SMBServer(capacity=1 << 20)
        client = SMBClient.in_process(server)
        array = client.create_array("W_g", 10)
        array.write(np.zeros(10, dtype=np.float32))
        listing = client.list_segments()
        assert listing["segments"][0]["version"] == 1

    def test_over_tcp(self):
        with TcpSMBServer(capacity=1 << 20) as server:
            client = SMBClient.connect(server.address)
            client.create_array("remote", 8)
            listing = client.list_segments()
            assert listing["segments"][0]["name"] == "remote"
            client.close()
