"""Tests for the SEASGD worker (Fig. 6 protocol) and termination alignment."""

import numpy as np
import pytest

from repro.caffe import Net, SolverConfig, SyntheticImageDataset
from repro.caffe.params import FlatParams
from repro.core.config import ShmCaffeConfig, TerminationCriterion
from repro.core.termination import TerminationCoordinator
from repro.core.worker import ShmCaffeWorker, WorkerError
from repro.smb import ControlBlock, SMBClient, SMBServer

from .test_netspec import small_spec


@pytest.fixture()
def dataset():
    return SyntheticImageDataset(
        num_classes=4, image_size=8, train_per_class=30, test_per_class=5,
        noise=0.6, seed=2,
    )


def make_worker(server, dataset, rank=0, overlap=True, iterations=5,
                update_interval=1, stale=False, moving_rate=0.2, seed=0):
    client = SMBClient.in_process(server)
    net = Net(small_spec(batch=4), seed=seed)
    flat = FlatParams(net)
    try:
        shm_key, _ = client.lookup("W_g")
        global_array = client.attach_array("W_g", shm_key, flat.count)
    except Exception:
        global_array = client.create_array("W_g", flat.count)
        global_array.write(flat.get_vector())
    increment = client.create_array(f"dW_{rank}", flat.count)
    config = ShmCaffeConfig(
        solver=SolverConfig(base_lr=0.05, momentum=0.9),
        moving_rate=moving_rate,
        update_interval=update_interval,
        max_iterations=iterations,
        overlap_updates=overlap,
        stale_global_read=stale,
    )
    worker = ShmCaffeWorker(
        rank=rank,
        net=net,
        config=config,
        global_weights=global_array,
        increment_buffer=increment,
        batches=dataset.minibatches(4, seed=rank + 10),
    )
    return worker, global_array


class TestWorker:
    def test_runs_configured_iterations(self, dataset):
        server = SMBServer(capacity=1 << 22)
        worker, _ = make_worker(server, dataset, iterations=7)
        history = worker.run()
        assert history.completed_iterations == 7
        assert len(history.records) == 7

    def test_history_records_losses_and_exchanges(self, dataset):
        server = SMBServer(capacity=1 << 22)
        worker, _ = make_worker(
            server, dataset, iterations=6, update_interval=3
        )
        history = worker.run()
        exchanged = [r.exchanged for r in history.records]
        assert exchanged == [True, False, False, True, False, False]
        assert all(np.isfinite(loss) for loss in history.losses)

    def test_global_weights_track_replica(self, dataset):
        # With one worker and alpha near 1, W_g must chase the replica.
        server = SMBServer(capacity=1 << 22)
        worker, global_array = make_worker(
            server, dataset, iterations=10, moving_rate=0.9
        )
        worker.run()
        final_local = worker.flat.get_vector()
        final_global = global_array.read()
        gap = np.abs(final_local - final_global).max()
        assert gap < 0.5

    def test_overlap_and_synchronous_agree_for_single_worker(self, dataset):
        # With one worker the ping-pong protocol is strictly alternating,
        # so overlapped and inline exchanges must produce identical math.
        results = {}
        for overlap in (False, True):
            server = SMBServer(capacity=1 << 22)
            worker, global_array = make_worker(
                server, dataset, iterations=8, overlap=overlap
            )
            worker.run()
            results[overlap] = (
                worker.flat.get_vector(), global_array.read()
            )
        np.testing.assert_allclose(
            results[False][0], results[True][0], rtol=1e-5, atol=1e-6
        )
        np.testing.assert_allclose(
            results[False][1], results[True][1], rtol=1e-5, atol=1e-6
        )

    def test_increment_conservation(self, dataset):
        # W_g(final) - W_g(init) must equal the sum of all increments the
        # worker pushed (server-side accumulate is pure addition).
        server = SMBServer(capacity=1 << 22)
        worker, global_array = make_worker(
            server, dataset, iterations=5, overlap=False
        )
        initial_global = global_array.read()
        pushed = []

        original = worker.increment_buffer.write

        def spy(values):
            pushed.append(np.array(values, copy=True))
            return original(values)

        worker.increment_buffer.write = spy
        worker.run()
        drift = global_array.read() - initial_global
        np.testing.assert_allclose(
            drift, np.sum(pushed, axis=0), rtol=1e-4, atol=1e-5
        )

    def test_buffer_size_mismatch_rejected(self, dataset):
        server = SMBServer(capacity=1 << 22)
        client = SMBClient.in_process(server)
        net = Net(small_spec(batch=4), seed=0)
        flat_count = FlatParams(net).count
        bad_global = client.create_array("W_g_bad", flat_count + 1)
        increment = client.create_array("dW", flat_count)
        with pytest.raises(WorkerError):
            ShmCaffeWorker(
                rank=0,
                net=net,
                config=ShmCaffeConfig(),
                global_weights=bad_global,
                increment_buffer=increment,
                batches=dataset.minibatches(4, seed=0),
            )

    def test_stale_read_mode_completes(self, dataset):
        server = SMBServer(capacity=1 << 22)
        worker, _ = make_worker(server, dataset, iterations=6, stale=True)
        history = worker.run()
        assert history.completed_iterations == 6

    def test_on_iteration_callback(self, dataset):
        server = SMBServer(capacity=1 << 22)
        worker, _ = make_worker(server, dataset, iterations=3)
        calls = []
        worker.on_iteration = lambda rank, it, stats: calls.append(
            (rank, it)
        )
        worker.run()
        assert calls == [(0, 1), (0, 2), (0, 3)]


class TestTermination:
    def make_control(self, num_workers):
        server = SMBServer(capacity=1 << 20)
        client = SMBClient.in_process(server)
        return ControlBlock.create(client, "ctl", num_workers)

    def test_master_stop_signals_slaves(self):
        control = self.make_control(2)
        master = TerminationCoordinator(
            control, 0, TerminationCriterion.MASTER_STOP, 5
        )
        slave = TerminationCoordinator(
            control, 1, TerminationCriterion.MASTER_STOP, 5
        )
        assert not slave.should_stop(3)
        assert not master.should_stop(4)
        assert master.should_stop(5)
        assert slave.should_stop(3)  # master's flag reached it

    def test_first_finisher_stops_everyone(self):
        control = self.make_control(3)
        coordinators = [
            TerminationCoordinator(
                control, rank, TerminationCriterion.FIRST_FINISHER, 10
            )
            for rank in range(3)
        ]
        assert not coordinators[2].should_stop(9)
        assert coordinators[1].should_stop(10)
        assert coordinators[0].should_stop(4)
        assert coordinators[2].should_stop(5)

    def test_average_iterations(self):
        control = self.make_control(2)
        a = TerminationCoordinator(
            control, 0, TerminationCriterion.AVERAGE_ITERATIONS, 10
        )
        b = TerminationCoordinator(
            control, 1, TerminationCriterion.AVERAGE_ITERATIONS, 10
        )
        a.publish(14)
        b.publish(5)
        assert not a.should_stop(14)  # mean 9.5 < 10
        b.publish(6)
        assert a.should_stop(14)  # mean 10 reached
        assert b.should_stop(6)

    def test_backstop_caps_runaway_worker(self):
        control = self.make_control(2)
        slave = TerminationCoordinator(
            control, 1, TerminationCriterion.MASTER_STOP, 5
        )
        # The master never signals, but the slave gives up at 2x target.
        assert not slave.should_stop(9)
        assert slave.should_stop(10)

    def test_invalid_target(self):
        control = self.make_control(1)
        with pytest.raises(ValueError):
            TerminationCoordinator(
                control, 0, TerminationCriterion.MASTER_STOP, 0
            )
