"""Tests for blobs and weight fillers."""

import numpy as np
import pytest

from repro.caffe.blob import Blob, fan_in_out, msra_fill, xavier_fill


class TestBlob:
    def test_data_and_diff_allocated(self):
        blob = Blob((2, 3), "b")
        assert blob.data.shape == (2, 3)
        assert blob.diff.shape == (2, 3)
        assert blob.count == 6
        assert blob.nbytes == 24

    def test_initial_data_accepted(self):
        blob = Blob((2,), data=np.asarray([1.0, 2.0]))
        np.testing.assert_array_equal(blob.data, [1.0, 2.0])

    def test_wrong_shape_data_rejected(self):
        with pytest.raises(ValueError):
            Blob((2,), data=np.zeros(3))

    def test_nonpositive_dims_rejected(self):
        with pytest.raises(ValueError):
            Blob((2, 0))

    def test_zero_diff(self):
        blob = Blob((4,))
        blob.diff[:] = 5.0
        blob.zero_diff()
        np.testing.assert_array_equal(blob.diff, 0.0)

    def test_copy_from(self):
        src = Blob((3,), data=np.asarray([1.0, 2.0, 3.0]))
        src.diff[:] = 7.0
        dst = Blob((3,))
        dst.copy_from(src)
        np.testing.assert_array_equal(dst.data, src.data)
        np.testing.assert_array_equal(dst.diff, 0.0)
        dst.copy_from(src, copy_diff=True)
        np.testing.assert_array_equal(dst.diff, 7.0)

    def test_copy_from_shape_mismatch(self):
        with pytest.raises(ValueError):
            Blob((3,)).copy_from(Blob((4,)))

    def test_copy_is_deep(self):
        src = Blob((2,), data=np.asarray([1.0, 1.0]))
        dst = Blob((2,))
        dst.copy_from(src)
        src.data[0] = 99.0
        assert dst.data[0] == 1.0


class TestFillers:
    def test_fan_in_out_conv(self):
        fan_in, fan_out = fan_in_out((8, 3, 5, 5))
        assert fan_in == 3 * 25
        assert fan_out == 8 * 25

    def test_fan_in_out_fc(self):
        fan_in, fan_out = fan_in_out((10, 20))
        assert (fan_in, fan_out) == (20, 10)

    def test_fan_in_out_rejects_vectors(self):
        with pytest.raises(ValueError):
            fan_in_out((5,))

    def test_xavier_bounds(self):
        rng = np.random.default_rng(0)
        weights = xavier_fill((16, 4, 3, 3), rng)
        limit = np.sqrt(3.0 / (4 * 9))
        assert weights.dtype == np.float32
        assert np.all(np.abs(weights) <= limit)

    def test_msra_std(self):
        rng = np.random.default_rng(0)
        weights = msra_fill((64, 64, 3, 3), rng)
        expected = np.sqrt(2.0 / (64 * 9))
        assert abs(weights.std() - expected) / expected < 0.1

    def test_fillers_deterministic_per_seed(self):
        a = xavier_fill((4, 4), np.random.default_rng(7))
        b = xavier_fill((4, 4), np.random.default_rng(7))
        np.testing.assert_array_equal(a, b)
