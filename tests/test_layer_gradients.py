"""Numerical gradient checks: every layer type inside a small net.

Dropout is exercised with ratio 0 (its mask resamples per forward pass,
which breaks finite differencing for any other ratio); its masking math is
covered behaviourally in test_layer_behavior.py.
"""

import numpy as np
import pytest

from repro.caffe.netspec import NetSpec

from .gradcheck import check_net_gradients

N, C, H, W = 3, 3, 8, 8


@pytest.fixture()
def inputs():
    rng = np.random.default_rng(11)
    return {
        "data": rng.standard_normal((N, C, H, W)).astype(np.float32),
        "label": rng.integers(0, 3, N),
    }


def base_spec():
    spec = NetSpec("gradcheck")
    spec.input("data", (N, C, H, W))
    spec.input("label", (N,))
    return spec


def finish(spec, top):
    top = spec.pool("gc_gp", top, method="ave", global_pool=True)
    logits = spec.fc("gc_fc", top, 3)
    spec.softmax_loss("gc_loss", logits, "label")
    return spec


class TestConvolutionGradients:
    def test_square_kernel(self, inputs):
        spec = base_spec()
        top = spec.conv("c", "data", 5, kernel=3, pad=1)
        check_net_gradients(finish(spec, top), inputs)

    def test_strided_no_pad(self, inputs):
        spec = base_spec()
        top = spec.conv("c", "data", 4, kernel=3, stride=2)
        check_net_gradients(finish(spec, top), inputs)

    def test_rectangular_kernels(self, inputs):
        spec = base_spec()
        top = spec.conv("c1", "data", 4, kernel=(1, 7), pad=(0, 3))
        top = spec.conv("c2", top, 4, kernel=(7, 1), pad=(3, 0))
        check_net_gradients(finish(spec, top), inputs)

    def test_no_bias(self, inputs):
        spec = base_spec()
        top = spec.conv("c", "data", 4, kernel=1, bias=False)
        check_net_gradients(finish(spec, top), inputs)

    def test_1x1(self, inputs):
        spec = base_spec()
        top = spec.conv("c", "data", 6, kernel=1)
        check_net_gradients(finish(spec, top), inputs)


class TestPoolingGradients:
    def test_max_pool_overlapping(self, inputs):
        # stride < kernel: the windows overlap (Inception's 3x3/s1 pool).
        spec = base_spec()
        top = spec.conv("c", "data", 4, kernel=3, pad=1)
        top = spec.pool("p", top, method="max", kernel=3, stride=1, pad=1)
        check_net_gradients(finish(spec, top), inputs)

    def test_max_pool_strided(self, inputs):
        spec = base_spec()
        top = spec.conv("c", "data", 4, kernel=3, pad=1)
        top = spec.pool("p", top, method="max", kernel=2, stride=2)
        check_net_gradients(finish(spec, top), inputs)

    def test_ave_pool_padded(self, inputs):
        spec = base_spec()
        top = spec.conv("c", "data", 4, kernel=3, pad=1)
        top = spec.pool("p", top, method="ave", kernel=3, stride=2, pad=1)
        check_net_gradients(finish(spec, top), inputs)


class TestActivationGradients:
    @pytest.mark.parametrize("layer_type", ["Sigmoid", "TanH"])
    def test_smooth_activations(self, inputs, layer_type):
        spec = base_spec()
        top = spec.conv("c", "data", 4, kernel=1)
        top = spec.add(layer_type, "act", [top])[0]
        check_net_gradients(finish(spec, top), inputs)

    def test_leaky_relu(self, inputs):
        spec = base_spec()
        top = spec.conv("c", "data", 4, kernel=1)
        top = spec.add("ReLU", "act", [top], negative_slope=0.1)[0]
        # ReLU's kink makes finite differences noisy near zero; loosen.
        check_net_gradients(finish(spec, top), inputs, tol=2e-2)


class TestNormalizationGradients:
    def test_batchnorm_affine(self, inputs):
        spec = base_spec()
        top = spec.conv("c", "data", 4, kernel=3, pad=1, bias=False)
        top = spec.add("BatchNorm", "bn", [top])[0]
        check_net_gradients(finish(spec, top), inputs, tol=1e-2)

    def test_batchnorm_plain(self, inputs):
        spec = base_spec()
        top = spec.conv("c", "data", 4, kernel=1)
        top = spec.add("BatchNorm", "bn", [top], affine=False)[0]
        check_net_gradients(finish(spec, top), inputs, tol=1e-2)

    def test_lrn(self, inputs):
        spec = base_spec()
        top = spec.conv("c", "data", 6, kernel=1)
        top = spec.add("LRN", "lrn", [top], local_size=5)[0]
        check_net_gradients(finish(spec, top), inputs, tol=1e-2)


class TestStructuralGradients:
    def test_concat(self, inputs):
        spec = base_spec()
        a = spec.conv("a", "data", 3, kernel=1)
        b = spec.conv("b", "data", 5, kernel=1)
        top = spec.concat("cat", [a, b])
        check_net_gradients(finish(spec, top), inputs)

    def test_eltwise_sum_with_coeffs(self, inputs):
        spec = base_spec()
        a = spec.conv("a", "data", 4, kernel=1)
        b = spec.conv("b", "data", 4, kernel=1)
        top = spec.add("Eltwise", "sum", [a, b], operation="sum",
                       coeffs=(0.3, 1.0))[0]
        check_net_gradients(finish(spec, top), inputs)

    def test_eltwise_max(self, inputs):
        spec = base_spec()
        a = spec.conv("a", "data", 4, kernel=1)
        b = spec.conv("b", "data", 4, kernel=1)
        top = spec.add("Eltwise", "mx", [a, b], operation="max")[0]
        check_net_gradients(finish(spec, top), inputs, tol=2e-2)

    def test_fanout_gradient_summing(self, inputs):
        # One conv output consumed by two branches: diffs must add.
        spec = base_spec()
        shared = spec.conv("shared", "data", 4, kernel=1)
        a = spec.conv("a", shared, 4, kernel=1)
        b = spec.conv("b", shared, 4, kernel=1)
        top = spec.add("Eltwise", "sum", [a, b], operation="sum")[0]
        check_net_gradients(finish(spec, top), inputs)

    def test_flatten_and_fc(self, inputs):
        spec = base_spec()
        top = spec.conv("c", "data", 2, kernel=3, stride=2)
        top = spec.add("Flatten", "flat", [top])[0]
        logits = spec.fc("fc", top, 3)
        spec.softmax_loss("loss", logits, "label")
        check_net_gradients(spec, inputs)

    def test_split(self, inputs):
        spec = base_spec()
        top = spec.conv("c", "data", 4, kernel=1)
        a, b = spec.add("Split", "split", [top], num_tops=2,
                        tops=["s1", "s2"])
        total = spec.add("Eltwise", "sum", [a, b], operation="sum")[0]
        check_net_gradients(finish(spec, total), inputs)

    def test_dropout_ratio_zero_is_identity(self, inputs):
        spec = base_spec()
        top = spec.conv("c", "data", 4, kernel=1)
        top = spec.add("Dropout", "drop", [top], ratio=0.0)[0]
        check_net_gradients(finish(spec, top), inputs)

    def test_auxiliary_loss_head(self, inputs):
        # Two losses (like Inception's aux heads) back-propagate jointly.
        spec = base_spec()
        trunk = spec.conv("trunk", "data", 4, kernel=1)
        main = spec.pool("gp1", trunk, method="ave", global_pool=True)
        logits = spec.fc("fc_main", main, 3)
        spec.softmax_loss("loss_main", logits, "label")
        aux = spec.conv("aux", trunk, 2, kernel=1)
        aux = spec.pool("gp2", aux, method="ave", global_pool=True)
        aux_logits = spec.fc("fc_aux", aux, 3)
        spec.softmax_loss("loss_aux", aux_logits, "label", loss_weight=0.3)
        check_net_gradients(spec, inputs)
