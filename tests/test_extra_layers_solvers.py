"""Tests for the extended layer zoo (Scale/Softmax/Power) and the extra
solver family (Nesterov/AdaGrad/Adam), plus the ASGD baseline platform."""

import numpy as np
import pytest

from repro.caffe import (
    AdaGradSolver,
    AdamSolver,
    NesterovSolver,
    Net,
    SGDSolver,
    SolverConfig,
    SyntheticImageDataset,
)
from repro.caffe.layers import LayerError, Power, Scale, Softmax
from repro.caffe.netspec import NetSpec, infer
from repro.platforms import asgd, shmcaffe

from .gradcheck import check_net_gradients
from .test_net_solver import make_inputs
from .test_netspec import small_spec

RNG = np.random.default_rng(5)


def setup_layer(layer, *bottom_shapes):
    return layer.setup(list(bottom_shapes), np.random.default_rng(0))


class TestScale:
    def test_defaults_to_identity(self):
        scale = Scale("s")
        setup_layer(scale, (2, 3, 4, 4))
        x = RNG.standard_normal((2, 3, 4, 4)).astype(np.float32)
        (out,) = scale.forward([x], train=True)
        np.testing.assert_allclose(out, x)

    def test_per_channel_affine(self):
        scale = Scale("s")
        setup_layer(scale, (1, 2, 2, 2))
        scale.params[0].data[:] = [2.0, 3.0]
        scale.params[1].data[:] = [1.0, -1.0]
        x = np.ones((1, 2, 2, 2), dtype=np.float32)
        (out,) = scale.forward([x], train=True)
        np.testing.assert_allclose(out[0, 0], 3.0)
        np.testing.assert_allclose(out[0, 1], 2.0)

    def test_gradients(self):
        spec = NetSpec()
        spec.input("data", (3, 3, 6, 6))
        spec.input("label", (3,))
        top = spec.conv("c", "data", 4, kernel=1)
        top = spec.add("Scale", "sc", [top])[0]
        top = spec.pool("gp", top, method="ave", global_pool=True)
        logits = spec.fc("fc", top, 3)
        spec.softmax_loss("loss", logits, "label")
        inputs = {
            "data": RNG.standard_normal((3, 3, 6, 6)).astype(np.float32),
            "label": RNG.integers(0, 3, 3),
        }
        check_net_gradients(spec, inputs)

    def test_infer_counts_scale_params(self):
        spec = NetSpec()
        spec.input("data", (1, 5, 2, 2))
        spec.add("Scale", "s", ["data"])
        assert infer(spec).param_count == 10  # gamma + beta

    def test_vector_input_rejected(self):
        with pytest.raises(LayerError):
            setup_layer(Scale("s"), (4,))


class TestSoftmaxLayer:
    def test_rows_are_distributions(self):
        layer = Softmax("sm")
        setup_layer(layer, (3, 5))
        logits = RNG.standard_normal((3, 5)).astype(np.float32)
        (out,) = layer.forward([logits], train=False)
        np.testing.assert_allclose(out.sum(axis=1), 1.0, rtol=1e-5)

    def test_gradient_matches_jacobian(self):
        layer = Softmax("sm")
        setup_layer(layer, (1, 4))
        logits = RNG.standard_normal((1, 4)).astype(np.float32)
        (top,) = layer.forward([logits], train=True)
        top_diff = RNG.standard_normal((1, 4)).astype(np.float32)
        (analytic,) = layer.backward([top_diff], [logits], [top])
        eps = 1e-3
        for index in range(4):
            bumped = logits.copy()
            bumped[0, index] += eps
            (plus,) = layer.forward([bumped], train=True)
            bumped[0, index] -= 2 * eps
            (minus,) = layer.forward([bumped], train=True)
            numeric = ((plus - minus) / (2 * eps) * top_diff).sum()
            assert analytic[0, index] == pytest.approx(numeric, abs=2e-3)


class TestPower:
    def test_linear_case(self):
        layer = Power("p", power=1.0, scale=2.0, shift=1.0)
        setup_layer(layer, (1, 3))
        x = np.asarray([[0.0, 1.0, 2.0]], dtype=np.float32)
        (out,) = layer.forward([x], train=True)
        np.testing.assert_allclose(out, [[1.0, 3.0, 5.0]])

    def test_square(self):
        layer = Power("p", power=2.0)
        setup_layer(layer, (1, 2))
        x = np.asarray([[3.0, -2.0]], dtype=np.float32)
        (out,) = layer.forward([x], train=True)
        np.testing.assert_allclose(out, [[9.0, 4.0]])
        (grad,) = layer.backward(
            [np.ones((1, 2), dtype=np.float32)], [x], [out]
        )
        np.testing.assert_allclose(grad, [[6.0, -4.0]])


class TestExtraSolvers:
    def test_nesterov_converges_faster_or_equal(self):
        losses = {}
        for cls in (SGDSolver, NesterovSolver):
            solver = cls(
                Net(small_spec(), seed=0),
                SolverConfig(base_lr=0.05, momentum=0.9),
            )
            inputs = make_inputs()
            for _ in range(25):
                stats = solver.step(inputs)
            losses[cls.__name__] = stats["loss"]
        assert losses["NesterovSolver"] < losses["SGDSolver"] + 0.2

    def test_nesterov_first_step_differs_from_sgd(self):
        nets = {}
        for cls in (SGDSolver, NesterovSolver):
            net = Net(small_spec(), seed=0)
            solver = cls(net, SolverConfig(base_lr=0.1, momentum=0.9))
            solver.step(make_inputs())
            solver.step(make_inputs(seed=1))
            nets[cls.__name__] = net.params[0].data.copy()
        assert not np.allclose(
            nets["SGDSolver"], nets["NesterovSolver"]
        )

    def test_adagrad_requires_zero_momentum(self):
        with pytest.raises(ValueError):
            AdaGradSolver(
                Net(small_spec(), seed=0),
                SolverConfig(momentum=0.9),
            )

    def test_adagrad_reduces_loss(self):
        solver = AdaGradSolver(
            Net(small_spec(), seed=0),
            SolverConfig(base_lr=0.05, momentum=0.0),
        )
        inputs = make_inputs()
        first = solver.step(inputs)["loss"]
        for _ in range(30):
            last = solver.step(inputs)["loss"]
        assert last < first

    def test_adagrad_step_sizes_shrink(self):
        solver = AdaGradSolver(
            Net(small_spec(), seed=0),
            SolverConfig(base_lr=0.1, momentum=0.0),
        )
        inputs = make_inputs()
        deltas = []
        weight = solver.net.params[0]
        for _ in range(3):
            before = weight.data.copy()
            solver.step(inputs)
            deltas.append(np.abs(weight.data - before).mean())
        assert deltas[2] < deltas[0]

    def test_adam_reduces_loss(self):
        solver = AdamSolver(
            Net(small_spec(), seed=0),
            SolverConfig(base_lr=0.005, momentum=0.9),
        )
        inputs = make_inputs()
        first = solver.step(inputs)["loss"]
        for _ in range(30):
            last = solver.step(inputs)["loss"]
        assert last < first

    def test_adam_beta2_validation(self):
        with pytest.raises(ValueError):
            AdamSolver(Net(small_spec(), seed=0), beta2=1.0)

    def test_lr0_params_untouched_by_adaptive_solvers(self):
        for cls, config in (
            (AdaGradSolver, SolverConfig(base_lr=0.1, momentum=0.0)),
            (AdamSolver, SolverConfig(base_lr=0.01, momentum=0.9)),
        ):
            net = Net(small_spec(), seed=0)
            solver = cls(net, config)
            stats_blobs = [
                blob for blob, lr_mult, _ in net.param_entries
                if lr_mult == 0.0
            ]
            assert stats_blobs  # BN running stats exist in small_spec
            # Solver must not touch them even with fake gradients present.
            for blob in stats_blobs:
                blob.diff[:] = 1.0
            before = [blob.data.copy() for blob in stats_blobs]
            solver.apply_update()
            for blob, prior in zip(stats_blobs, before):
                np.testing.assert_array_equal(blob.data, prior)


def bn_free_spec(batch=4, channels=3, size=8, classes=4):
    """ASGD's gradient-only server cannot carry BN statistics (see the
    module docstring of repro.platforms.asgd); test it on a BN-free net."""
    spec = NetSpec("bn_free")
    data = spec.input("data", (batch, channels, size, size))
    labels = spec.input("label", (batch,))
    top = spec.conv_relu("conv1", data, 8, kernel=3, pad=1)
    top = spec.pool("pool1", top, method="max", kernel=2, stride=2)
    top = spec.conv_relu("conv2", top, 8, kernel=3, pad=1)
    top = spec.pool("gp", top, method="ave", global_pool=True)
    logits = spec.fc("fc", top, classes)
    spec.softmax_loss("loss", logits, labels)
    spec.accuracy("acc", logits, labels)
    return spec


class TestAsgdBaseline:
    @pytest.fixture()
    def dataset(self):
        return SyntheticImageDataset(
            num_classes=4, image_size=8, train_per_class=40,
            test_per_class=8, noise=0.7, seed=6,
        )

    def test_server_applies_updates_on_arrival(self):
        server = asgd.ParameterServer(np.zeros(4, dtype=np.float32))
        server.push(np.ones(4, dtype=np.float32), lr=0.5)
        np.testing.assert_allclose(server.pull(), -0.5)
        assert server.updates_applied == 1

    def test_gradient_size_checked(self):
        server = asgd.ParameterServer(np.zeros(4, dtype=np.float32))
        with pytest.raises(ValueError):
            server.push(np.ones(5, dtype=np.float32), lr=0.1)

    def test_training_learns(self, dataset):
        result = asgd.train(
            lambda: bn_free_spec(batch=4), dataset,
            SolverConfig(base_lr=0.02, momentum=0.9),
            batch_size=4, iterations=80, num_workers=2,
        )
        assert result.platform == "asgd"
        assert result.final_accuracy > 0.4

    def test_fetch_interval_validation(self, dataset):
        with pytest.raises(ValueError):
            asgd.train(
                lambda: small_spec(batch=4), dataset, SolverConfig(),
                batch_size=4, iterations=2, num_workers=2,
                fetch_interval=0,
            )

    def test_elastic_averaging_beats_plain_asgd(self, dataset):
        """The EASGD/SEASGD design claim, checked head-to-head."""
        config = SolverConfig(base_lr=0.03, momentum=0.9)
        plain = asgd.train(
            lambda: bn_free_spec(batch=4), dataset, config,
            batch_size=4, iterations=60, num_workers=4, seed=2,
        )
        elastic = shmcaffe.train_async(
            lambda: bn_free_spec(batch=4), dataset, config,
            batch_size=4, iterations=60, num_workers=4, seed=2,
        )
        assert elastic.final_accuracy >= plain.final_accuracy - 0.1
