#!/usr/bin/env python
"""The Soft Memory Box substrate, used directly over TCP.

Walks through the paper's Fig. 2 / Fig. 5 buffer choreography without any
deep-learning machinery:

1. start an SMB server (real TCP on localhost);
2. the master worker creates the global weight buffer ``W_g`` and the
   progress control block, and "broadcasts" the SHM keys;
3. each worker attaches ``W_g``, allocates a private increment buffer
   ``dW_x``, and runs a few SEASGD exchanges (eqs. (5)-(7)) against a toy
   quadratic objective;
4. workers publish progress through the control block and align their
   termination on the FIRST_FINISHER criterion.

Run:
    python examples/smb_parameter_sharing.py
"""

import threading

import numpy as np

from repro.core.seasgd import apply_increment_local, weight_increment
from repro.smb import ControlBlock, SMBClient, TcpSMBServer

DIMENSIONS = 1000
WORKERS = 4
ITERATIONS = 30
MOVING_RATE = 0.2
LEARNING_RATE = 0.1


def worker_main(address, shm_keys, rank, target, results):
    """One worker: local SGD on ||w - target||^2 plus SEASGD exchanges."""
    client = SMBClient.connect(address)
    global_w = client.attach_array("W_g", shm_keys["W_g"], DIMENSIONS)
    control = ControlBlock.attach(
        client, "control", shm_keys["control"], WORKERS
    )
    delta = client.create_array(f"dW_{rank}", DIMENSIONS)

    rng = np.random.default_rng(rank)
    local = rng.standard_normal(DIMENSIONS).astype(np.float32)

    iteration = 0
    while True:
        # T1/T2: read W_g, elastic-update the local replica (eqs. 5-6).
        global_now = global_w.read()
        increment = weight_increment(local, global_now, MOVING_RATE)
        local = apply_increment_local(local, increment)

        # T.A1-T.A3: push the increment, server accumulates into W_g.
        delta.write(increment)
        delta.accumulate_into(global_w)

        # T4/T5: "training" = one gradient step toward this worker's
        # noisy view of the target.
        noisy_target = target + 0.05 * rng.standard_normal(DIMENSIONS)
        gradient = 2.0 * (local - noisy_target.astype(np.float32))
        local = local - LEARNING_RATE * gradient

        iteration += 1
        control.publish_progress(rank, iteration)
        if iteration >= ITERATIONS:
            control.signal_stop(2)  # first finisher stops everyone
        if control.stop_code() != ControlBlock.STOP_CLEAR:
            break

    results[rank] = (iteration, float(np.abs(local - target).mean()))
    client.close()


def main() -> None:
    target = np.linspace(-1.0, 1.0, DIMENSIONS).astype(np.float32)

    with TcpSMBServer(capacity=1 << 26) as server:
        print(f"SMB server listening on {server.address}")

        # Master-side bring-up: create W_g + control block, collect keys.
        master = SMBClient.connect(server.address)
        global_w = master.create_array("W_g", DIMENSIONS)
        control = ControlBlock.create(master, "control", WORKERS)
        shm_keys = {"W_g": global_w.shm_key, "control": control.shm_key}
        print(f"broadcasting SHM keys: { {k: hex(v) for k, v in shm_keys.items()} }")

        results = {}
        threads = [
            threading.Thread(
                target=worker_main,
                args=(server.address, shm_keys, rank, target, results),
            )
            for rank in range(WORKERS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        final_global = global_w.read()
        print("\nper-worker outcomes (iterations, mean |local - target|):")
        for rank in sorted(results):
            iterations, error = results[rank]
            print(f"  worker {rank}: {iterations:3d} iterations, "
                  f"error {error:.4f}")
        print(f"\nglobal-weight error vs target: "
              f"{np.abs(final_global - target).mean():.4f}")
        print(f"server stats: {master.stats()}")
        master.close()


if __name__ == "__main__":
    main()
