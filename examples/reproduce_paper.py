#!/usr/bin/env python
"""Regenerate every table and figure series of the ShmCaffe paper.

Analytic experiments (Figs. 7, 9, 10, 12-15; Tables II-VI) run in
seconds; the two real-training experiments (Figs. 8 and 11) take a few
minutes in quick mode.

Run:
    python examples/reproduce_paper.py            # everything, quick
    python examples/reproduce_paper.py --analytic # model-only, seconds
    python examples/reproduce_paper.py --full     # full-length training
"""

import argparse

from repro.experiments import runner
from repro.telemetry import LOG_LEVELS, setup_logging


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--analytic", action="store_true",
        help="skip the real-training experiments (Figs. 8 and 11)",
    )
    parser.add_argument(
        "--full", action="store_true",
        help="run the full-length (15-epoch) training experiments",
    )
    parser.add_argument(
        "--log-level", default="info", choices=LOG_LEVELS,
        help="logging verbosity (shared repro logging setup)",
    )
    args = parser.parse_args()
    setup_logging(args.log_level)

    print(
        runner.run_all(
            quick=not args.full,
            include_training=not args.analytic,
        )
    )


if __name__ == "__main__":
    main()
