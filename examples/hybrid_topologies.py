#!/usr/bin/env python
"""Explore hybrid (S# x A#) topologies: how should 16 GPUs be grouped?

The paper's Table III fixes a handful of configurations; this example
sweeps *every* factorisation of a worker count, showing the timing
trade-off with the performance model and then spot-checking convergence
with real training for two of them.

Run:
    python examples/hybrid_topologies.py
"""

from repro.caffe import SolverConfig, SyntheticImageDataset, models
from repro.perfmodel import model_profile, shmcaffe_h
from repro.platforms import shmcaffe

WORKERS = 16


def factorisations(workers):
    return [s for s in range(1, workers + 1) if workers % s == 0]


def main() -> None:
    print(f"timing model: Inception-ResNet-v2, {WORKERS} GPUs")
    print(f"{'config':16s} {'comm ms':>8s} {'comm %':>7s} {'iter ms':>8s}")
    profile = model_profile("inception_resnet_v2")
    for group_size in factorisations(WORKERS):
        breakdown = shmcaffe_h(profile, WORKERS, group_size)
        groups = WORKERS // group_size
        label = f"S{group_size} x A{groups}"
        print(
            f"{label:16s} {breakdown.comm_ms:8.1f} "
            f"{breakdown.comm_ratio * 100:6.1f}% "
            f"{breakdown.iteration_ms:8.1f}"
        )

    print("\nconvergence spot check (scaled model, 8 workers):")
    dataset = SyntheticImageDataset(
        num_classes=10, image_size=12, train_per_class=160,
        test_per_class=20, noise=1.0, seed=7,
    )
    solver = SolverConfig(
        base_lr=0.05, momentum=0.9, lr_policy="step", gamma=0.1,
        stepsize=120,
    )
    for group_size in (1, 2, 4):
        result = shmcaffe.train(
            spec_factory=lambda: models.scaled_spec(
                "inception_v1", batch_size=10, image_size=12
            ),
            dataset=dataset,
            solver_config=solver,
            batch_size=10,
            iterations=160,
            num_workers=8,
            group_size=group_size,
        )
        label = (
            "pure async (A8)" if group_size == 1
            else f"S{group_size} x A{8 // group_size}"
        )
        print(
            f"  {label:16s} final acc {result.final_accuracy:.3f}, "
            f"loss {result.final_loss:.3f}"
        )


if __name__ == "__main__":
    main()
