#!/usr/bin/env python
"""Checkpointing a distributed run and resuming it later.

Trains ShmCaffe-A for a first leg, snapshots the *global* weights (the
elastic centre on the SMB server) to disk, then starts a brand-new
distributed job seeded from the snapshot and trains a second leg —
the workflow for long jobs on shared clusters.

Run:
    python examples/checkpoint_resume.py
"""

import tempfile
from pathlib import Path

from repro.caffe import (
    FlatParams,
    Net,
    SolverConfig,
    SyntheticImageDataset,
    load_net,
    models,
    save_net,
)
from repro.core import (
    DistributedTrainingManager,
    ShmCaffeConfig,
)
from repro.platforms import evaluate_weights


def spec_factory():
    return models.scaled_spec("inception_v1", batch_size=10, image_size=12)


def run_leg(dataset, iterations, checkpoint=None, seed=7):
    """One training leg; if ``checkpoint`` is given, resume from it."""
    initial_weights = None
    if checkpoint is not None:
        template = Net(spec_factory(), seed=seed)
        load_net(template, checkpoint)
        initial_weights = FlatParams(template).get_vector()

    manager = DistributedTrainingManager(
        spec_factory=spec_factory,
        config=ShmCaffeConfig(
            solver=SolverConfig(base_lr=0.05, momentum=0.9),
            moving_rate=0.2,
            max_iterations=iterations,
        ),
        dataset=dataset,
        batch_size=10,
        num_workers=4,
        seed=seed,
        initial_weights=initial_weights,
    )
    return manager.run(timeout=600)


def main() -> None:
    dataset = SyntheticImageDataset(
        num_classes=10, image_size=12, train_per_class=120,
        test_per_class=20, noise=0.9, seed=7,
    )

    with tempfile.TemporaryDirectory() as tmp:
        checkpoint = Path(tmp) / "global_weights.npz"

        print("leg 1: 120 iterations from scratch...")
        first = run_leg(dataset, iterations=120)
        metrics = evaluate_weights(
            spec_factory, first.final_global_weights, dataset
        )
        print(f"  after leg 1: acc {metrics['accuracy_top1']:.3f}")

        # Snapshot the elastic centre.
        net = Net(spec_factory(), seed=7)
        FlatParams(net).set_vector(first.final_global_weights)
        save_net(net, checkpoint)
        print(f"  checkpoint written: {checkpoint.name}")

        print("leg 2: 120 more iterations resumed from the checkpoint...")
        second = run_leg(dataset, iterations=120, checkpoint=checkpoint)
        metrics = evaluate_weights(
            spec_factory, second.final_global_weights, dataset
        )
        print(f"  after leg 2: acc {metrics['accuracy_top1']:.3f}")


if __name__ == "__main__":
    main()
