#!/usr/bin/env python
"""Coordinated checkpoint/resume of a distributed run.

Trains ShmCaffe-A for a first leg with the CheckpointCoordinator
writing consistent distributed checkpoints (global weights W_g, the
solver state of every rank, and each rank's dataset cursor) at fixed
iteration boundaries, then rebuilds the job with ``resume=`` and trains
a second leg.  Because a checkpoint captures *everything* — momentum,
RNG streams, data cursors — the resumed trajectory is bit-identical to
an uninterrupted run, which this script asserts.

The same flow is available from the command line:

    repro checkpoint inspect <dir>
    repro checkpoint resume <dir> --iterations 80

Run:
    python examples/checkpoint_resume.py
"""

import tempfile

import numpy as np

from repro.caffe import SolverConfig, SyntheticImageDataset, models
from repro.core import (
    DistributedTrainingManager,
    ShmCaffeConfig,
    TerminationCriterion,
    inspect_checkpoint,
)


def spec_factory():
    return models.scaled_spec(
        "inception_v1", batch_size=10, image_size=12, num_classes=10
    )


def run_leg(dataset, iterations, checkpoint_dir=None, resume=None):
    """One training leg; ``resume=`` picks up where a checkpoint left off."""
    manager = DistributedTrainingManager(
        spec_factory=spec_factory,
        config=ShmCaffeConfig(
            solver=SolverConfig(base_lr=0.05, momentum=0.9),
            moving_rate=0.2,
            max_iterations=iterations,
            termination=TerminationCriterion.MASTER_STOP,
            overlap_updates=False,
        ),
        dataset=dataset,
        batch_size=10,
        num_workers=1,
        seed=7,
        checkpoint_dir=checkpoint_dir,
        checkpoint_every=0 if checkpoint_dir is None else 20,
        resume=resume,
    )
    return manager.run(timeout=600)


def main() -> None:
    dataset = SyntheticImageDataset(
        num_classes=10, image_size=12, train_per_class=60,
        test_per_class=10, noise=0.9, seed=7,
    )

    with tempfile.TemporaryDirectory() as checkpoints:
        print("reference: 80 iterations, uninterrupted...")
        reference = run_leg(dataset, iterations=80)

        print("leg 1: 40 iterations, checkpointing every 20...")
        first = run_leg(dataset, iterations=40, checkpoint_dir=checkpoints)

        latest = inspect_checkpoint(checkpoints)["latest"]
        print(
            f"  latest checkpoint: seq {latest['seq']} at iteration "
            f"{latest['iteration']} ({latest['num_workers']} worker state(s))"
        )

        print("leg 2: resumed from the checkpoint, 40 more iterations...")
        second = run_leg(dataset, iterations=80, resume=checkpoints)

        # Loss continuity: the stitched legs retrace the uninterrupted
        # run exactly — no warm-up dip, no repeated batches.
        stitched = first.histories[0].losses + second.histories[0].losses
        assert stitched == reference.histories[0].losses, (
            "resumed trajectory diverged from the uninterrupted run"
        )
        np.testing.assert_array_equal(
            second.final_global_weights, reference.final_global_weights
        )
        print(
            f"  continuity verified: {len(stitched)} stitched losses match "
            f"the reference bit-for-bit (final loss {stitched[-1]:.4f})"
        )


if __name__ == "__main__":
    main()
