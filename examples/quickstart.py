#!/usr/bin/env python
"""Quickstart: distributed training with ShmCaffe in ~30 lines.

Trains a scaled Inception-v1 on a synthetic image-classification task
with 4 asynchronous SEASGD workers sharing parameters through an
in-process Soft Memory Box, then evaluates the global weights.

Run:
    python examples/quickstart.py
"""

from repro.caffe import SolverConfig, SyntheticImageDataset, models
from repro.platforms import shmcaffe
from repro.telemetry import setup_logging


def main() -> None:
    # Same logging setup as `python -m repro --log-level info`.
    setup_logging("info")

    # A deterministic synthetic stand-in for ImageNet: 10 classes of
    # noisy prototype images.
    dataset = SyntheticImageDataset(
        num_classes=10, image_size=12, train_per_class=100,
        test_per_class=20, noise=0.9, seed=7,
    )

    # The paper's optimiser recipe, scaled down: SGD with momentum and a
    # step learning-rate policy.
    solver = SolverConfig(
        base_lr=0.05, momentum=0.9, lr_policy="step", gamma=0.1,
        stepsize=400,
    )

    # ShmCaffe-A: 4 workers, each its own replica, sharing through the
    # SMB global weight buffer with elastic averaging (alpha = 0.2).
    result = shmcaffe.train_async(
        spec_factory=lambda: models.scaled_spec(
            "inception_v1", batch_size=10, image_size=12
        ),
        dataset=dataset,
        solver_config=solver,
        batch_size=10,
        iterations=250,
        num_workers=4,
        moving_rate=0.2,
        update_interval=1,
    )

    print(f"platform:        {result.platform}")
    print(f"workers:         {result.num_workers}")
    print(f"final test acc:  {result.final_accuracy:.3f}")
    print(f"final test loss: {result.final_loss:.3f}")


if __name__ == "__main__":
    main()
