#!/usr/bin/env python
"""Compare the four platforms on one task: a miniature Fig. 8 + Fig. 10.

Trains BVLC Caffe (1 GPU and 4-GPU NCCL SSGD), Caffe-MPI (star SSGD),
MPICaffe (allreduce SSGD) and ShmCaffe (hybrid) on the same synthetic
dataset and recipe, then prints a convergence table next to the paper-
scale per-iteration timing model for the same worker count.

Run:
    python examples/platform_comparison.py
"""

from repro.caffe import SolverConfig, SyntheticImageDataset, models
from repro.perfmodel import model_profile, platform_breakdown
from repro.platforms import bvlc_caffe, caffe_mpi, mpi_caffe, shmcaffe

WORKERS = 4
BATCH = 10
ITERATIONS = 200


def main() -> None:
    dataset = SyntheticImageDataset(
        num_classes=10, image_size=12, train_per_class=120,
        test_per_class=20, noise=0.9, seed=7,
    )
    solver = SolverConfig(
        base_lr=0.05, momentum=0.9, lr_policy="step", gamma=0.1,
        stepsize=150,
    )
    spec_factory = lambda: models.scaled_spec(  # noqa: E731
        "inception_v1", batch_size=BATCH, image_size=12
    )
    common = dict(
        spec_factory=spec_factory, dataset=dataset, solver_config=solver,
        batch_size=BATCH, iterations=ITERATIONS, eval_every=ITERATIONS,
    )

    print("training (scaled Inception-v1, synthetic data)...")
    runs = {
        "caffe x1": bvlc_caffe.train_standalone(**common),
        "caffe x4 (NCCL SSGD)": bvlc_caffe.train_multi_gpu(
            num_workers=WORKERS, **common
        ),
        "caffe-mpi (star SSGD)": caffe_mpi.train(
            num_workers=WORKERS, **common
        ),
        "mpicaffe (allreduce)": mpi_caffe.train(
            num_workers=WORKERS, **common
        ),
        "shmcaffe-h (S2 x A2)": shmcaffe.train_hybrid(
            num_workers=WORKERS, group_size=2, **common
        ),
    }

    print(f"\n{'platform':24s} {'test acc':>9s} {'test loss':>10s}")
    for name, result in runs.items():
        print(
            f"{name:24s} {result.final_accuracy:9.3f} "
            f"{result.final_loss:10.3f}"
        )

    print("\npaper-scale per-iteration timing (Inception-v1, 16 GPUs):")
    profile = model_profile("inception_v1")
    print(f"{'platform':24s} {'comp ms':>8s} {'comm ms':>8s} {'comm %':>7s}")
    for name in ("caffe", "caffe_mpi", "mpi_caffe", "shmcaffe"):
        breakdown = platform_breakdown(name, profile, 16)
        print(
            f"{name:24s} {breakdown.compute_ms:8.1f} "
            f"{breakdown.comm_ms:8.1f} {breakdown.comm_ratio * 100:6.1f}%"
        )


if __name__ == "__main__":
    main()
