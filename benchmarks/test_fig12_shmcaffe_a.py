"""Figs. 12-13 / Table V bench: ShmCaffe-A comp/comm sweep, 4 models.

Alongside the calibrated analytic sweep, the discrete-event simulation is
run at the headline configurations as an independent mechanism-level
cross-check (it must rank configurations the same way).
"""

import pytest

from repro.experiments import fig12_table5
from repro.perfmodel import model_profile, simulate_seasgd_contention


def test_table5_shmcaffe_a(benchmark, record):
    result = benchmark(fig12_table5.run)
    record("fig12_table5_shmcaffe_a", result)

    rows = {(row["model"], row["workers"]): row for row in result.rows}

    # Paper's stated communication ratios, within tolerance.
    assert rows[("inception_v1", 8)]["comm_pct"] == pytest.approx(
        16.3, abs=6.0
    )
    assert rows[("inception_v1", 16)]["comm_pct"] == pytest.approx(
        26.0, abs=8.0
    )
    assert rows[("resnet_50", 8)]["comm_pct"] == pytest.approx(30.0, abs=6.0)
    assert rows[("resnet_50", 16)]["comm_pct"] == pytest.approx(
        56.0, abs=8.0
    )
    assert rows[("inception_resnet_v2", 16)]["comm_pct"] == pytest.approx(
        65.0, abs=10.0
    )

    # VGG16 blows up immediately: already communication-bound at 2 GPUs.
    assert rows[("vgg16", 2)]["comm_pct"] > 50.0

    # Communication grows monotonically with workers for every model.
    for model in ("inception_v1", "resnet_50", "inception_resnet_v2",
                  "vgg16"):
        series = [
            rows[(model, n)]["comm_ms"] for n in (1, 2, 4, 8, 16)
        ]
        assert series[0] == 0.0
        assert all(b > a for a, b in zip(series[1:], series[2:]))


def test_table5_desim_cross_check(record):
    lines = ["desim cross-check (mechanism-level, no protocol overheads):"]
    for name in ("inception_v1", "resnet_50"):
        model = model_profile(name)
        series = []
        for workers in (2, 8, 16):
            outcome = simulate_seasgd_contention(
                model, workers, iterations=25, seed=0
            )
            series.append(outcome.mean_comm_ms)
            lines.append(
                f"  {name} @{workers}: comm {outcome.mean_comm_ms:.1f} ms "
                f"({outcome.mean_comm_ratio * 100:.1f}%)"
            )
        assert series[0] < series[1] < series[2]
    record("fig12_desim_crosscheck", "\n".join(lines))
