"""Ablation: elastic averaging (SEASGD) vs plain parameter-server ASGD.

The design argument behind ShmCaffe's choice of EASGD over Downpour-style
ASGD (paper Sec. II): apply-on-arrival gradient pushes suffer the
delayed-gradient problem as workers scale, while the elastic exchange
tolerates exploration.  Head-to-head at the same compute budget.
"""

import numpy as np

from repro.experiments.convergence import ConvergenceSetup
from repro.experiments.report import ExperimentResult
from repro.platforms import asgd, shmcaffe


def test_seasgd_vs_plain_asgd(benchmark, record):
    setup = ConvergenceSetup(
        model="inception_v1",  # the scaled variant is BN-free: fair to ASGD
        epochs=8, train_per_class=160, noise=1.0, batch_size=10,
        base_lr=0.04,
    )
    dataset = setup.dataset()
    spec_factory = setup.spec_factory()

    def sweep():
        result = ExperimentResult(
            "ablation/seasgd-vs-asgd",
            "final accuracy: SEASGD vs parameter-server ASGD",
        )
        for workers in (4, 8):
            iterations = setup.iterations(dataset, workers)
            config = setup.solver_config(dataset, workers)
            plain = asgd.train(
                spec_factory, dataset, config,
                batch_size=setup.batch_size, iterations=iterations,
                num_workers=workers, seed=setup.seed,
            )
            elastic = shmcaffe.train_async(
                spec_factory, dataset, config,
                batch_size=setup.batch_size, iterations=iterations,
                num_workers=workers, moving_rate=setup.moving_rate,
                seed=setup.seed,
            )
            result.rows.append(
                {
                    "workers": workers,
                    "asgd_acc": round(plain.final_accuracy, 3),
                    "seasgd_acc": round(elastic.final_accuracy, 3),
                }
            )
        return result

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    record("ablation_seasgd_vs_asgd", result)

    for row in result.rows:
        assert np.isfinite(row["asgd_acc"])
        # Elastic averaging must not lose to plain ASGD, and typically
        # wins outright as workers scale.
        assert row["seasgd_acc"] >= row["asgd_acc"] - 0.05
