"""Fig. 11 bench: ShmCaffe-A vs ShmCaffe-H convergence as workers scale.

Real training.  The paper's shape to reproduce: asynchronous SEASGD
accuracy slips as the worker count grows while the hybrid variant stays
close to the single-GPU anchor.
"""

from repro.experiments import fig11_a_vs_h


def test_fig11_async_vs_hybrid(benchmark, record):
    result = benchmark.pedantic(
        lambda: fig11_a_vs_h.run(quick=True, worker_counts=(4, 16)),
        rounds=1,
        iterations=1,
    )
    record("fig11_a_vs_h", result)

    accuracy = {
        (row["variant"], row["gpus"]): row["final_acc"]
        for row in result.rows
    }
    anchor = accuracy[("caffe", 1)]

    # Async degrades with scale...
    assert accuracy[("shmcaffe_a", 16)] < accuracy[("shmcaffe_a", 4)] + 0.02
    # ...and the hybrid resists the degradation at 16 workers.
    assert accuracy[("shmcaffe_h", 16)] >= accuracy[("shmcaffe_a", 16)]
    # The hybrid stays within striking distance of the 1-GPU anchor.
    assert accuracy[("shmcaffe_h", 16)] > anchor - 0.25
    # Small scale: everything works.
    assert accuracy[("shmcaffe_a", 4)] > 0.5
    assert accuracy[("shmcaffe_h", 4)] > 0.5
