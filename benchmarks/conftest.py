"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figure series and
records the formatted rows under ``benchmarks/results/`` so the output
survives pytest's capture.  Run with ``-s`` to also see tables inline.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture()
def record(results_dir):
    """Write an ExperimentResult (or text) to results/<name>.txt and echo."""

    def _record(name: str, result) -> None:
        text = result if isinstance(result, str) else result.format()
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[recorded to {path}]")

    return _record
