"""Fig. 9 / Table II bench: training time and scalability, four platforms."""

import pytest

from repro.experiments import fig09_table2
from repro.perfmodel import model_profile, training_hours


def test_table2_training_time(benchmark, record):
    result = benchmark(fig09_table2.run)
    record("fig09_table2_training_time", result)

    # Headline pins (also enforced by unit tests; repeated here so the
    # bench output is self-validating).
    model = model_profile("inception_v1")
    shm16 = training_hours("shmcaffe", model, 16)
    assert training_hours("caffe", model, 1) / shm16 == pytest.approx(
        10.1, rel=0.2
    )
    assert training_hours("caffe_mpi", model, 16) / shm16 == pytest.approx(
        2.8, rel=0.2
    )

    caffe_row = result.rows[0]
    assert caffe_row["time@1"] == "22:59"
    # Caffe degrades from 8 to 16 GPUs (paper: 8:39 -> 9:53).
    assert caffe_row["scal@16"] < caffe_row["scal@8"]
