"""Ablation: the ``update_interval`` hyper-parameter.

ShmCaffe's first extra hyper-parameter trades communication for
freshness: exchanging with SMB every k-th iteration divides the visible
communication by ~k (analytic sweep) but loosens the elastic coupling
(training sweep).
"""

import pytest

from repro.experiments.convergence import ConvergenceSetup
from repro.experiments.report import ExperimentResult
from repro.perfmodel import model_profile, shmcaffe_a
from repro.platforms import shmcaffe

INTERVALS = (1, 2, 4, 8)


def test_update_interval_comm_amortisation(benchmark, record):
    model = model_profile("resnet_50")
    result = ExperimentResult(
        "ablation/update_interval",
        "communication per iteration vs update_interval (ResNet-50 @8)",
    )
    for interval in INTERVALS:
        breakdown = shmcaffe_a(model, 8, update_interval=interval)
        result.rows.append(
            {
                "update_interval": interval,
                "comm_ms": round(breakdown.comm_ms, 1),
                "comm_pct": round(breakdown.comm_ratio * 100, 1),
            }
        )
    record("ablation_update_interval_analytic", result)

    comm = result.column("comm_ms")
    assert all(b < a for a, b in zip(comm, comm[1:]))
    # Amortisation is roughly 1/k for the read-dominated regime.
    assert comm[0] / comm[-1] == pytest.approx(8.0, rel=0.35)

    benchmark(lambda: shmcaffe_a(model, 8, update_interval=4))


def test_update_interval_accuracy_tradeoff(benchmark, record):
    setup = ConvergenceSetup(
        epochs=8, train_per_class=160, noise=1.0, batch_size=10,
        base_lr=0.05,
    )
    dataset = setup.dataset()
    iterations = setup.iterations(dataset, workers=4)
    solver_config = setup.solver_config(dataset, workers=4)

    def sweep():
        result = ExperimentResult(
            "ablation/update_interval",
            "final accuracy vs update_interval (4 async workers)",
        )
        for interval in (1, 8):
            outcome = shmcaffe.train_async(
                setup.spec_factory(), dataset, solver_config,
                batch_size=setup.batch_size, iterations=iterations,
                num_workers=4, update_interval=interval,
                moving_rate=setup.moving_rate, seed=setup.seed,
            )
            result.rows.append(
                {
                    "update_interval": interval,
                    "final_acc": round(outcome.final_accuracy, 3),
                    "final_loss": round(outcome.final_loss, 3),
                }
            )
        return result

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    record("ablation_update_interval_training", result)
    accs = result.column("final_acc")
    # Both still learn; tight coupling must not be catastrophically worse.
    assert all(acc > 0.25 for acc in accs)
