"""Ablation: the ``moving_rate`` (elastic alpha) hyper-parameter.

The paper fixes alpha = 0.2.  This sweep shows why the elastic middle
ground matters: a tiny alpha decouples the replicas from the centre (the
global weights lag), while alpha -> 1 effectively serialises replicas
through W_g every iteration.
"""

import numpy as np

from repro.experiments.convergence import ConvergenceSetup
from repro.experiments.report import ExperimentResult
from repro.platforms import shmcaffe

ALPHAS = (0.05, 0.2, 0.5, 0.9)


def test_moving_rate_sweep(benchmark, record):
    setup = ConvergenceSetup(
        epochs=4, train_per_class=100, noise=1.0, batch_size=10,
        base_lr=0.05,
    )
    dataset = setup.dataset()
    iterations = setup.iterations(dataset, workers=4)
    solver_config = setup.solver_config(dataset, workers=4)

    def sweep():
        result = ExperimentResult(
            "ablation/moving_rate",
            "final accuracy vs moving_rate alpha (4 async workers)",
        )
        for alpha in ALPHAS:
            outcome = shmcaffe.train_async(
                setup.spec_factory(), dataset, solver_config,
                batch_size=setup.batch_size, iterations=iterations,
                num_workers=4, moving_rate=alpha,
                update_interval=setup.update_interval, seed=setup.seed,
            )
            result.rows.append(
                {
                    "moving_rate": alpha,
                    "final_acc": round(outcome.final_accuracy, 3),
                    "final_loss": round(outcome.final_loss, 3),
                }
            )
        return result

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    record("ablation_moving_rate", result)

    accs = dict(zip(ALPHAS, result.column("final_acc")))
    # The paper's alpha=0.2 must be a sane choice: competitive with the
    # best of the sweep.
    assert accs[0.2] >= max(accs.values()) - 0.15
    assert all(np.isfinite(list(accs.values())))
