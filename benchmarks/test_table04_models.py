"""Table IV bench: model parameter sizes and compute-time profiles.

The timed section is the allocation-free inference over the full-size
VGG16 graph — the operation that makes handling 138 M-parameter models
cheap in this codebase.
"""

import pytest

from repro.caffe import models
from repro.caffe.netspec import infer
from repro.experiments import table04_models


def test_table4_model_profiles(benchmark, record):
    result = table04_models.run()
    record("table04_models", result)

    for row in result.rows:
        assert abs(row["size_error_pct"]) < 12.0

    sizes = {row["model"]: row["built_param_mb"] for row in result.rows}
    # Orderings the paper relies on.
    assert sizes["inception_v1"] < sizes["resnet_50"]
    assert sizes["resnet_50"] < sizes["inception_resnet_v2"]
    assert sizes["inception_resnet_v2"] < sizes["vgg16"]

    benchmark(
        lambda: infer(models.full_spec("vgg16", batch_size=1)).param_count
    )


def test_table4_resnet_twice_inception():
    inception = infer(models.full_spec("inception_v1", batch_size=1))
    resnet = infer(models.full_spec("resnet_50", batch_size=1))
    assert resnet.param_count / inception.param_count == pytest.approx(
        2.0, rel=0.25
    )
