"""Extension bench: striping W_g over multiple SMB servers (Sec. V plan).

Shows the headline payoff of the paper's future work: the models that are
communication-bound on one memory server (VGG16, Inception-ResNet-v2 at
16 GPUs) drop back under the 50% comm-ratio line with a handful of
servers.  Also times a live striped exchange across three in-process
servers.
"""

import numpy as np
import pytest

from repro.experiments.report import ExperimentResult
from repro.perfmodel import model_profile, shmcaffe_a, shmcaffe_multi_server
from repro.smb import SMBClient, SMBServer, create_sharded_array

SERVER_COUNTS = (1, 2, 4, 8)


def test_multi_server_scaling(benchmark, record):
    result = ExperimentResult(
        "ext/multi-smb",
        "ShmCaffe-A comm ratio vs number of SMB servers (16 workers)",
    )
    for name in ("resnet_50", "inception_resnet_v2", "vgg16"):
        model = model_profile(name)
        for servers in SERVER_COUNTS:
            breakdown = shmcaffe_multi_server(model, 16, servers)
            result.rows.append(
                {
                    "model": name,
                    "smb_servers": servers,
                    "comm_ms": round(breakdown.comm_ms, 1),
                    "comm_pct": round(breakdown.comm_ratio * 100, 1),
                }
            )
    record("ext_multi_smb_servers", result)

    rows = {
        (row["model"], row["smb_servers"]): row for row in result.rows
    }
    # One server reproduces the single-SMB model (rows are rounded).
    for name in ("resnet_50", "vgg16"):
        assert rows[(name, 1)]["comm_ms"] == pytest.approx(
            shmcaffe_a(model_profile(name), 16).comm_ms, abs=0.06
        )
    # Striping rescues the communication-bound models: VGG16 at 16
    # workers falls below 50% comm with 8 servers.
    assert rows[("vgg16", 1)]["comm_pct"] > 90.0
    assert rows[("vgg16", 8)]["comm_pct"] < 70.0
    assert rows[("inception_resnet_v2", 4)]["comm_pct"] < 30.0

    # Monotone improvement in server count for every model.
    for name in ("resnet_50", "inception_resnet_v2", "vgg16"):
        series = [rows[(name, k)]["comm_ms"] for k in SERVER_COUNTS]
        assert all(b < a for a, b in zip(series, series[1:]))

    benchmark(lambda: shmcaffe_multi_server(model_profile("vgg16"), 16, 4))


def test_striped_exchange_live(benchmark):
    """Time one full striped SEASGD exchange over three servers."""
    servers = [SMBServer(capacity=1 << 24) for _ in range(3)]
    clients = [SMBClient.in_process(server) for server in servers]
    count = 1 << 18  # 1 MiB of float32
    global_w = create_sharded_array(clients, "W_g", count)
    delta = create_sharded_array(clients, "dW", count)
    payload = np.ones(count, dtype=np.float32)

    def exchange():
        global_now = global_w.read()
        increment = 0.2 * (payload - global_now)
        delta.write(increment)
        delta.accumulate_into(global_w)

    benchmark(exchange)
    assert global_w.read().mean() > 0.0
