"""Bench: the discrete-event SMB contention simulation itself.

Times the queue-level simulation and records a side-by-side against the
calibrated analytic model — the gap between the two columns is the
protocol/processing overhead the calibration folds into beta.
"""

from repro.experiments.report import ExperimentResult
from repro.perfmodel import (
    model_profile,
    shmcaffe_a,
    simulate_seasgd_contention,
)


def test_desim_vs_analytic(benchmark, record):
    model = model_profile("inception_resnet_v2")

    result = ExperimentResult(
        "desim",
        "queue-level simulation vs calibrated analytic model "
        "(Inception-ResNet-v2)",
    )
    for workers in (2, 4, 8, 16):
        sim = simulate_seasgd_contention(
            model, workers, iterations=25, seed=0
        )
        analytic = shmcaffe_a(model, workers)
        result.rows.append(
            {
                "workers": workers,
                "desim_comm_ms": round(sim.mean_comm_ms, 1),
                "analytic_comm_ms": round(analytic.comm_ms, 1),
                "desim_nic_util": round(sim.nic_utilisation, 2),
            }
        )
    record("desim_vs_analytic", result)

    desim_col = result.column("desim_comm_ms")
    analytic_col = result.column("analytic_comm_ms")
    assert all(b > a for a, b in zip(desim_col, desim_col[1:]))
    # The analytic model (protocol overheads included) upper-bounds the
    # bandwidth-only simulation at every scale.
    assert all(a >= d for d, a in zip(desim_col, analytic_col))

    benchmark(
        lambda: simulate_seasgd_contention(
            model, 8, iterations=25, seed=0
        )
    )
