"""Fig. 8 bench: four-platform convergence (real training, quick recipe).

This is a real-training benchmark: each platform trains the scaled
Inception-v1 on the synthetic stand-in under the paper's recipe
(step-LR every 4 epochs, minibatch-per-worker constant, moving_rate 0.2,
update_interval 1).  Quick mode keeps the whole bench to a couple of
minutes; run ``repro.experiments.fig08_convergence.run(quick=False)`` for
the full 15-epoch version.
"""

import numpy as np

from repro.experiments import fig08_convergence


def test_fig8_convergence(benchmark, record):
    result = benchmark.pedantic(
        lambda: fig08_convergence.run(quick=True),
        rounds=1,
        iterations=1,
    )
    record("fig08_convergence", result)

    accuracy = {
        (row["platform"], row["gpus"]): row["final_acc"]
        for row in result.rows
    }
    # Every platform converges well above the 10% chance level.
    assert all(acc > 0.5 for acc in accuracy.values())

    # Paper shape: ShmCaffe lands at or slightly below 1-GPU Caffe and is
    # competitive with the synchronous distributed baselines.
    anchor = accuracy[("caffe", 1)]
    shm = accuracy[("shmcaffe", 8)]
    assert shm > anchor - 0.25
    sync_best = max(
        accuracy[("caffe_mpi", 8)], accuracy[("mpi_caffe", 8)]
    )
    assert shm > sync_best - 0.2

    losses = {
        (row["platform"], row["gpus"]): row["final_loss"]
        for row in result.rows
    }
    assert all(np.isfinite(loss) for loss in losses.values())
