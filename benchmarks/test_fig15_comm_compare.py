"""Fig. 15 bench: communication time, ShmCaffe-A vs ShmCaffe-H."""

from repro.experiments import fig15_comm_compare


def test_fig15_a_vs_h(benchmark, record):
    result = benchmark(fig15_comm_compare.run)
    record("fig15_comm_compare", result)

    by_key = {(row["model"], row["gpus"]): row for row in result.rows}

    # Paper: at 16 GPUs hybrid wins total iteration time for every model.
    for model in ("inception_v1", "resnet_50", "inception_resnet_v2",
                  "vgg16"):
        row = by_key[(model, 16)]
        assert row["H_iter_ms"] < row["A_iter_ms"]

    # The hybrid advantage grows with model size at 16 GPUs.
    gains = [
        by_key[(model, 16)]["A_comm_ms"] - by_key[(model, 16)]["H_comm_ms"]
        for model in ("inception_v1", "resnet_50", "inception_resnet_v2",
                      "vgg16")
    ]
    assert all(b > a for a, b in zip(gains, gains[1:]))
