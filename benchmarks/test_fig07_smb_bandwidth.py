"""Fig. 7 bench: SMB server aggregated R/W bandwidth vs process count.

Regenerates the modelled paper-scale curve and measures this repo's SMB
server live (in-process transport, the RDMA stand-in).  The benchmark
timer wraps one full measurement round at 8 clients.
"""

import pytest

from repro.experiments import fig07_bandwidth
from repro.perfmodel import measure_smb_bandwidth, modeled_bandwidth_gbs


def test_fig7_bandwidth_table(benchmark, record):
    result = fig07_bandwidth.run(
        measure=True, buffer_mb=1.0, operations=10
    )
    record("fig07_smb_bandwidth", result)

    # Paper shape: the modelled curve rises monotonically and saturates
    # at 6.7 GB/s (96% of the 7 GB/s HCA).
    modeled = result.column("modeled_gbs")
    assert all(b > a for a, b in zip(modeled, modeled[1:]))
    assert modeled[-1] == pytest.approx(6.72, rel=0.02)

    benchmark(
        lambda: measure_smb_bandwidth(
            processes=8, buffer_mb=1.0, operations=6
        )
    )


def test_fig7_measured_shape_saturates(record):
    # The live measurement must show diminishing per-process returns:
    # aggregated throughput does not scale linearly from 2 to 16 clients.
    two = measure_smb_bandwidth(2, buffer_mb=1.0, operations=10).gbs
    sixteen = measure_smb_bandwidth(16, buffer_mb=1.0, operations=10).gbs
    record(
        "fig07_saturation_check",
        f"measured: 2 procs = {two:.2f} GB/s, 16 procs = {sixteen:.2f} "
        f"GB/s (linear scaling would be {8 * two:.2f})",
    )
    assert sixteen < 8 * two


def test_fig7_modeled_utilisation():
    assert modeled_bandwidth_gbs(32) / 7.0 == pytest.approx(0.96, abs=0.01)
