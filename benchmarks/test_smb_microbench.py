"""SMB operation micro-benchmarks: read / write / accumulate latencies.

Not a paper figure, but the foundation the Fig. 7 claim rests on: the SMB
server's per-operation cost.  Measures both transports — the in-process
core (the RDMA stand-in) and real TCP framing.
"""

import numpy as np
import pytest

from repro.smb import SMBClient, SMBServer, TcpSMBServer

PAYLOAD_ELEMENTS = 1 << 18  # 1 MiB of float32


@pytest.fixture(scope="module")
def inproc():
    server = SMBServer(capacity=1 << 26)
    client = SMBClient.in_process(server)
    array = client.create_array("bench", PAYLOAD_ELEMENTS)
    delta = client.create_array("bench_delta", PAYLOAD_ELEMENTS)
    delta.write(np.ones(PAYLOAD_ELEMENTS, dtype=np.float32))
    return client, array, delta


@pytest.fixture(scope="module")
def tcp():
    server = TcpSMBServer(capacity=1 << 26).start()
    client = SMBClient.connect(server.address)
    array = client.create_array("bench", PAYLOAD_ELEMENTS)
    delta = client.create_array("bench_delta", PAYLOAD_ELEMENTS)
    delta.write(np.ones(PAYLOAD_ELEMENTS, dtype=np.float32))
    yield client, array, delta
    client.close()
    server.stop()


class TestInProcessOps:
    def test_read_1mib(self, benchmark, inproc):
        _, array, _ = inproc
        out = benchmark(array.read)
        assert out.size == PAYLOAD_ELEMENTS

    def test_write_1mib(self, benchmark, inproc):
        _, array, _ = inproc
        payload = np.zeros(PAYLOAD_ELEMENTS, dtype=np.float32)
        benchmark(array.write, payload)

    def test_accumulate_1mib(self, benchmark, inproc):
        _, array, delta = inproc
        benchmark(delta.accumulate_into, array)


class TestTcpOps:
    def test_read_1mib(self, benchmark, tcp):
        _, array, _ = tcp
        out = benchmark(array.read)
        assert out.size == PAYLOAD_ELEMENTS

    def test_write_1mib(self, benchmark, tcp):
        _, array, _ = tcp
        payload = np.zeros(PAYLOAD_ELEMENTS, dtype=np.float32)
        benchmark(array.write, payload)

    def test_accumulate_1mib(self, benchmark, tcp):
        # Accumulate ships no payload over the wire (server-side compute):
        # it should be far cheaper than a write of the same region.
        _, array, delta = tcp
        benchmark(delta.accumulate_into, array)
