"""Ablation: hiding the global-weight *read* behind computation.

ShmCaffe deliberately keeps the read side synchronous: "ShmCaffe does not
hide the time of reading the global weight from the time of computation,
because the learning performance deteriorates due to the delayed (or
stale) parameter problem" (Sec. III-G).  This bench enables the hidden
(stale) read and measures the cost of that staleness on convergence.
"""

import numpy as np

from repro.experiments.convergence import ConvergenceSetup
from repro.experiments.report import ExperimentResult
from repro.platforms import shmcaffe


def test_stale_read_hurts_or_matches(benchmark, record):
    setup = ConvergenceSetup(
        epochs=10, train_per_class=240, noise=1.1, batch_size=10,
        base_lr=0.05,
    )
    dataset = setup.dataset()
    iterations = setup.iterations(dataset, workers=8)
    solver_config = setup.solver_config(dataset, workers=8)

    def sweep():
        result = ExperimentResult(
            "ablation/stale_read",
            "synchronous vs hidden (stale) global-weight read, 8 workers",
        )
        for stale in (False, True):
            accs = []
            for seed in (7, 17):
                outcome = shmcaffe.train_async(
                    setup.spec_factory(), dataset, solver_config,
                    batch_size=setup.batch_size, iterations=iterations,
                    num_workers=8, moving_rate=setup.moving_rate,
                    update_interval=setup.update_interval,
                    stale_global_read=stale, seed=seed,
                )
                accs.append(outcome.final_accuracy)
            result.rows.append(
                {
                    "read_mode": "stale(hidden)" if stale else "synchronous",
                    "mean_final_acc": round(float(np.mean(accs)), 3),
                    "runs": len(accs),
                }
            )
        return result

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    record("ablation_stale_read", result)

    sync_acc, stale_acc = result.column("mean_final_acc")
    # The faithful protocol must not lose to the stale variant by a
    # meaningful margin (the paper's reason for keeping reads sync).
    assert sync_acc >= stale_acc - 0.05
    assert sync_acc > 0.4
