"""Fig. 14 / Table VI bench: ShmCaffe-H comp/comm over Table III configs."""

import pytest

from repro.experiments import fig14_table6


def test_table6_shmcaffe_h(benchmark, record):
    result = benchmark(fig14_table6.run)
    record("fig14_table6_shmcaffe_h", result)

    rows = {(row["model"], row["config"]): row for row in result.rows}

    # Paper headline: Inception-ResNet-v2 at 16 GPUs drops from 65% (A)
    # to ~30.7% under S4 x A4.
    hybrid_pct = rows[("inception_resnet_v2", "16 (S4 x A4)")]["comm_pct"]
    assert hybrid_pct == pytest.approx(30.7, abs=10.0)

    # The all-synchronous 4 (S4) reference never touches SMB: its
    # communication (intra-node allreduce + straggler wait) stays well
    # below the 16-GPU hybrid's for the small models.
    assert rows[("inception_v1", "4 (S4)")]["comm_pct"] < 25.0
    assert (
        rows[("inception_v1", "4 (S4)")]["comm_ms"]
        < rows[("inception_v1", "16 (S4 x A4)")]["comm_ms"]
    )

    # VGG16 stays communication-heavy even hybrid at 16 GPUs (paper: ~80%
    # with 16 GPUs in 4 machines; multi-node expansion unsuitable).
    assert rows[("vgg16", "16 (S4 x A4)")]["comm_pct"] > 50.0


def test_table6_group_width_tradeoff():
    # At 8 GPUs, wider sync groups (S4 x A2) put fewer participants on
    # SMB than (S2 x A4): SMB read contention must be lower.
    from repro.perfmodel import model_profile, shmcaffe_h

    model = model_profile("inception_resnet_v2")
    wide = shmcaffe_h(model, 8, 4)   # 2 groups on SMB
    narrow = shmcaffe_h(model, 8, 2)  # 4 groups on SMB
    assert wide.components["t_rgw"] < narrow.components["t_rgw"]
