"""Fig. 10 bench: per-iteration computation/communication, four platforms."""

import pytest

from repro.experiments import fig10_comp_comm


def test_fig10_comp_comm(benchmark, record):
    result = benchmark(fig10_comp_comm.run)
    record("fig10_comp_comm", result)

    rows = {(row["platform"], row["gpus"]): row for row in result.rows}

    # ShmCaffe's communication beats every baseline at both scales.
    for gpus in (8, 16):
        shm = rows[("shmcaffe", gpus)]["comm_ms"]
        assert shm < rows[("caffe_mpi", gpus)]["comm_ms"]
        assert shm < rows[("caffe", gpus)]["comm_ms"]

    # Paper: ShmCaffe communication ~5.3x faster than Caffe-MPI at 16.
    ratio = (
        rows[("caffe_mpi", 16)]["comm_ms"] / rows[("shmcaffe", 16)]["comm_ms"]
    )
    assert ratio == pytest.approx(5.3, rel=0.35)

    # Computation time is platform-independent (same GPUs, same model).
    comps = {row["comp_ms"] for row in result.rows}
    assert max(comps) - min(comps) < 1.0
